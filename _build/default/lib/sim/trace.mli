(** Full record of a simulated run: every operation with its invocation and
    response times (real and local-clock), and every message with its
    send/receive data.  Traces feed the linearizability checker, the
    latency analyses, and the shift machinery. *)

type ('op, 'result) op_record = {
  pid : int;
  op : 'op;
  index : int;  (** global invocation order *)
  invoke_real : Prelude.Ticks.t;
  invoke_clock : Prelude.Ticks.t;
  mutable response_real : Prelude.Ticks.t option;
  mutable response_clock : Prelude.Ticks.t option;
  mutable result : 'result option;
}

type 'msg message_record = {
  src : int;
  dst : int;
  msg : 'msg;
  pair_index : int;  (** sequence number among (src, dst) messages *)
  send_real : Prelude.Ticks.t;
  delay : Prelude.Ticks.t;
  mutable delivered : bool;
}

type ('op, 'result, 'msg) t = {
  n : int;
  offsets : int array;  (** per-process clock offsets c_i *)
  ops : ('op, 'result) op_record list;  (** in invocation order *)
  messages : 'msg message_record list;  (** in send order *)
  end_time : Prelude.Ticks.t;  (** real time of the last event processed *)
}

val completed : ('op, 'result, 'msg) t -> ('op, 'result) op_record list
val pending : ('op, 'result, 'msg) t -> ('op, 'result) op_record list

val latency : ('op, 'result) op_record -> Prelude.Ticks.t option
(** Response time − invocation time, for completed operations. *)

val max_latency :
  ?f:(('op, 'result) op_record -> bool) -> ('op, 'result, 'msg) t -> Prelude.Ticks.t
(** Worst-case latency among completed operations selected by [f]. *)

val find_op : ('op, 'result, 'msg) t -> index:int -> ('op, 'result) op_record option

val result_of : ('op, 'result, 'msg) t -> index:int -> 'result option
(** Result of the [index]-th operation (global invocation order), if
    completed. *)

val pp_op_record :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'result -> unit) ->
  Format.formatter ->
  ('op, 'result) op_record ->
  unit
