(** ASCII space-time diagrams of runs — the visual language of the thesis'
    Figures 3–17 (per-process timelines with operation intervals),
    regenerated from execution traces.

    Each process gets one row; every completed operation is drawn as an
    interval [label………] positioned on a common scaled time axis.  Pending
    operations render with a ragged end.  Example:

    {v
    p0 ····[rmw(1)→0═════════]··············
    p1 ·········[rmw(2)→0═════════]·········
       4800                              6500
    v} *)

let render (type op result msg) ?(width = 76)
    ~(pp_op : Format.formatter -> op -> unit)
    ~(pp_result : Format.formatter -> result -> unit)
    (trace : (op, result, msg) Trace.t) : string list =
  let ops = trace.ops in
  if ops = [] then [ "(empty trace)" ]
  else begin
    let t0 =
      List.fold_left (fun acc (r : _ Trace.op_record) -> min acc r.invoke_real)
        max_int ops
    in
    let t1 =
      List.fold_left
        (fun acc (r : _ Trace.op_record) ->
          max acc (Option.value ~default:r.invoke_real r.response_real))
        0 ops
    in
    let span = max 1 (t1 - t0) in
    let col t = (t - t0) * (width - 1) / span in
    let rows = Array.init trace.n (fun _ -> Bytes.make width '\xff') in
    (* use 0xff as a placeholder for the middle dot, patched at the end to
       keep the grid single-byte while emitting UTF-8 *)
    List.iter
      (fun (r : (op, result) Trace.op_record) ->
        let row = rows.(r.pid) in
        let a = col r.invoke_real in
        let b =
          match r.response_real with
          | Some t -> max (a + 1) (col t)
          | None -> width - 1
        in
        let label =
          let raw =
            match r.result with
            | Some res -> Format.asprintf "%a:%a" pp_op r.op pp_result res
            | None -> Format.asprintf "%a:?" pp_op r.op
          in
          (* the grid is single-byte: keep printable ASCII only *)
          String.to_seq raw
          |> Seq.filter (fun c -> Char.code c >= 32 && Char.code c < 127)
          |> String.of_seq
        in
        Bytes.set row a '[';
        for i = a + 1 to min (width - 1) b do
          Bytes.set row i '='
        done;
        if b < width then Bytes.set row b ']';
        (* overlay the label inside the interval, truncated to fit *)
        String.iteri
          (fun i c ->
            let pos = a + 1 + i in
            if pos < b && pos < width then Bytes.set row pos c)
          label)
      ops;
    let line_of row =
      String.concat ""
        (List.init width (fun i ->
             match Bytes.get row i with '\xff' -> "\xc2\xb7" (* · *) | c -> String.make 1 c))
    in
    let body =
      List.init trace.n (fun pid -> Printf.sprintf "p%-2d %s" pid (line_of rows.(pid)))
    in
    let axis =
      Printf.sprintf "    %-*d%*d" (width / 2) t0 (width - (width / 2)) t1
    in
    body @ [ axis ]
  end
