(** The commutativity graph of an object's operation types.

    Kosa [3] (the thesis' §I.B) extends the pairwise lower-bound arguments
    to a *graph* whose nodes are an object's operation types and whose
    edges mark pairs that immediately do not commute; bound results then
    propagate along graph structure.  This module materializes that graph
    from the executable classification, annotates each node with its
    Chapter II summary, and renders the whole thing for inspection (plain
    text or Graphviz DOT). *)

open Spec

type node = {
  op_ty : string;
  kind : string;  (** pure-mutator / pure-accessor / other *)
  strongly_insc : bool;  (** self-loop: strongly imm. non-self-commuting *)
  insc : bool;
}

type edge = {
  a : string;
  b : string;
  note : string;  (** witness note from the classifier *)
}

type t = { object_name : string; nodes : node list; edges : edge list }

module Build (D : Data_type.SAMPLED) = struct
  module C = Checkers.Make (D)

  let node ty =
    let kind =
      if C.is_pure_mutator ty then "pure-mutator"
      else if C.is_pure_accessor ty then "pure-accessor"
      else "other"
    in
    {
      op_ty = ty;
      kind;
      strongly_insc = C.strongly_immediately_non_self_commuting ty <> None;
      insc = C.immediately_non_self_commuting ty <> None;
    }

  (* One undirected edge per unordered pair of distinct types that
     immediately do not commute. *)
  let edges () =
    let rec pairs = function
      | [] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    List.filter_map
      (fun (a, b) ->
        match C.immediately_non_commuting a b with
        | Some w -> Some { a; b; note = w.note }
        | None -> None)
      (pairs D.op_types)

  let build () = { object_name = D.name; nodes = List.map node D.op_types; edges = edges () }
end

let pp fmt g =
  Format.fprintf fmt "commutativity graph of %s:@." g.object_name;
  List.iter
    (fun n ->
      Format.fprintf fmt "  %-14s %-13s%s@." n.op_ty n.kind
        (if n.strongly_insc then " [strongly non-self-commuting]"
         else if n.insc then " [non-self-commuting]"
         else ""))
    g.nodes;
  if g.edges = [] then Format.fprintf fmt "  (all pairs immediately commute)@."
  else
    List.iter
      (fun e -> Format.fprintf fmt "  %s —✗— %s  (%s)@." e.a e.b e.note)
      g.edges

(** Graphviz rendering: double circles mark strongly non-self-commuting
    types (subject to Theorem C.1), solid edges mark immediately
    non-commuting pairs. *)
let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" (String.map (function '-' -> '_' | c -> c) g.object_name));
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\\n%s\"%s];\n" n.op_ty n.op_ty n.kind
           (if n.strongly_insc then " shape=doublecircle" else "")))
    g.nodes;
  List.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "  %s -- %s;\n" e.a e.b))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
