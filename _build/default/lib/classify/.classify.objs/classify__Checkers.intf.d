lib/classify/checkers.mli: Data_type Format Spec
