lib/classify/checkers.ml: Data_type Format Fun List Prelude Printf Spec String
