lib/classify/commutativity_graph.ml: Buffer Checkers Data_type Format List Printf Spec String
