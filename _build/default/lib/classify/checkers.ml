(** Executable checkers for the operation-type properties of Chapter II.

    Each *existential* property (immediately non-commuting, eventually
    non-self-commuting, mutator, accessor, non-overwriter, …) is decided by
    searching the data type's sample universe ([sample_prefixes] ×
    [sample_ops]) for a concrete witness, which is returned so tests and the
    CLI can display it.  Each *universal* property (immediately
    self-commuting, eventually self-commuting, overwriter) is the bounded
    negation: no witness exists in the universe.  The universes are chosen
    per data type to contain the paper's own witnesses (e.g. the
    [UpdateNext] case analysis of Chapter II.B), so on the paper's examples
    the bounded checks agree with the true properties; property tests
    corroborate them with randomized probing. *)

open Spec

module Make (D : Data_type.SAMPLED) = struct
  module R = Data_type.Run (D)

  type instance = (D.op, D.result) Data_type.Instance.t

  type witness = {
    prefix : D.op list;  (** the sequence ρ *)
    instances : instance list;  (** the operation instances involved *)
    note : string;
  }

  let pp_witness fmt w =
    Format.fprintf fmt "ρ=[%a]; ops=[%a]; %s"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "∘")
         D.pp_op)
      w.prefix
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         (Data_type.Instance.pp D.pp_op D.pp_result))
      w.instances w.note

  (* All instances of operation type [ty], committed (given their unique
     legal return value) at [state]. *)
  let instances_of_type ty state : instance list =
    D.sample_ops
    |> List.filter (fun op -> String.equal (D.op_type op) ty)
    |> List.map (fun op -> Data_type.Instance.make op (R.result_after state op))

  let legal_after state instances = R.sequence_legal state instances

  (* Search every (ρ, op1 ∈ ty1, op2 ∈ ty2) triple, instances committed
     after ρ, and return the first for which [decide] accepts the pair of
     per-order legality/state outcomes. *)
  let search_pairs ty1 ty2 decide =
    List.find_map
      (fun prefix ->
        let s = R.replay prefix in
        let i1s = instances_of_type ty1 s and i2s = instances_of_type ty2 s in
        (* Note: op1 and op2 may be the same operation value — two dequeues
           are distinct *instances* of one operation (Definition B.1 does
           not require distinct arguments). *)
        List.find_map
          (fun (i1, i2) ->
            let fwd = R.run_instances s [ i1; i2 ]
            and bwd = R.run_instances s [ i2; i1 ] in
            decide ~prefix ~i1 ~i2 ~fwd ~bwd)
          (Prelude.Combinatorics.ordered_pairs i1s i2s))
      D.sample_prefixes

  (** Definition B.1: ρ∘op1 and ρ∘op2 each legal, but at least one order of
      the two is illegal. *)
  let immediately_non_commuting ty1 ty2 =
    search_pairs ty1 ty2 (fun ~prefix ~i1 ~i2 ~fwd ~bwd ->
        if fwd = None || bwd = None then
          Some
            {
              prefix;
              instances = [ i1; i2 ];
              note =
                Printf.sprintf "order %s is illegal"
                  (if fwd = None then "op1∘op2" else "op2∘op1");
            }
        else None)

  (** Definition B.2. *)
  let immediately_non_self_commuting ty = immediately_non_commuting ty ty

  (** Definition B.3: both orders illegal. *)
  let strongly_immediately_non_self_commuting ty =
    search_pairs ty ty (fun ~prefix ~i1 ~i2 ~fwd ~bwd ->
        if fwd = None && bwd = None then
          Some { prefix; instances = [ i1; i2 ]; note = "both orders illegal" }
        else None)

  (** "Immediately (self-)commuting" in the paper's terminology = not
      immediately non-(self-)commuting; bounded universal check. *)
  let immediately_self_commuting ty = immediately_non_self_commuting ty = None

  (** Definition C.3: both single extensions legal, and the two orders are
      not equivalent — either exactly one order is legal, or both are and
      they reach different (hence non-equivalent, see [Run.equivalent])
      states. *)
  let eventually_non_self_commuting ty =
    search_pairs ty ty (fun ~prefix ~i1 ~i2 ~fwd ~bwd ->
        match (fwd, bwd) with
        | Some s12, Some s21 when not (R.equivalent s12 s21) ->
            Some
              { prefix; instances = [ i1; i2 ]; note = "orders reach different states" }
        | Some _, None | None, Some _ ->
            Some
              { prefix; instances = [ i1; i2 ]; note = "exactly one order legal" }
        | _ -> None)

  (** Definition C.6, bounded universal check. *)
  let eventually_self_commuting ty = eventually_non_self_commuting ty = None

  (* ---- Permutation properties (Definitions C.4 / C.5) ---- *)

  type permuting_verdict = {
    holds : bool;
    legal_permutations : instance list list;
    reason : string;
  }

  (* Shared engine: [distinguish pi pi'] says whether the definition requires
     π and π' to be non-equivalent. *)
  let check_permuting ~prefix ~(instances : instance list) ~distinguish =
    let s = R.replay prefix in
    if not (List.for_all (fun i -> legal_after s [ i ]) instances) then
      { holds = false; legal_permutations = []; reason = "an instance is illegal after ρ" }
    else
      let perms = Prelude.Combinatorics.permutations instances in
      let legal = List.filter_map
          (fun p -> match R.run_instances s p with
            | Some st -> Some (p, st)
            | None -> None)
          perms
      in
      if List.length legal < 2 then
        { holds = false;
          legal_permutations = List.map fst legal;
          reason = "fewer than two legal permutations" }
      else
        let offending = ref None in
        List.iter
          (fun (p, st) ->
            List.iter
              (fun (p', st') ->
                if p != p' && distinguish p p' && R.equivalent st st' then
                  offending := Some (p, p'))
              legal)
          legal;
        match !offending with
        | Some _ ->
            { holds = false;
              legal_permutations = List.map fst legal;
              reason = "two permutations required to differ are equivalent" }
        | None ->
            { holds = true;
              legal_permutations = List.map fst legal;
              reason = "all required permutation pairs are non-equivalent" }

  let last xs = List.nth xs (List.length xs - 1)

  let distinct_perms p p' =
    not
      (List.for_all2
         (fun (a : instance) (b : instance) -> D.equal_op a.op b.op)
         p p')

  (** Definition C.4 instantiated at a given ρ and instance set: any two
      *different* legal permutations are non-equivalent. *)
  let non_self_any_permuting_at ~prefix ~instances =
    check_permuting ~prefix ~instances ~distinguish:distinct_perms

  (** Definition C.5: any two legal permutations with *different last
      operation* are non-equivalent. *)
  let non_self_last_permuting_at ~prefix ~instances =
    check_permuting ~prefix ~instances ~distinguish:(fun p p' ->
        not (D.equal_op (last p).Data_type.Instance.op (last p').Data_type.Instance.op))

  (* Search the sample universe for k distinct instances of [ty] witnessing
     the property. *)
  let search_permuting ~k ty check =
    List.find_map
      (fun prefix ->
        let s = R.replay prefix in
        let candidates = instances_of_type ty s in
        let distinct = List.sort_uniq
            (fun (a : instance) (b : instance) -> compare a.op b.op)
            candidates
        in
        List.find_map
          (fun instances ->
            let v = check ~prefix ~instances in
            if v.holds then Some { prefix; instances; note = v.reason } else None)
          (Prelude.Combinatorics.combinations k distinct))
      D.sample_prefixes

  let eventually_non_self_any_permuting ~k ty =
    search_permuting ~k ty non_self_any_permuting_at

  let eventually_non_self_last_permuting ~k ty =
    search_permuting ~k ty non_self_last_permuting_at

  (* ---- Mutator / accessor / overwriter (Section II.D) ---- *)

  (** Definition D.1: some instance changes the object state. *)
  let is_mutator ty =
    List.find_map
      (fun prefix ->
        let s = R.replay prefix in
        List.find_map
          (fun (i : instance) ->
            let s', _ = D.apply s i.op in
            if not (R.equivalent s s') then
              Some { prefix; instances = [ i ]; note = "state changed" }
            else None)
          (instances_of_type ty s))
      D.sample_prefixes

  (** Definition D.2: some instance of the type is illegal after some legal
      sequence — i.e. the return value carries information about the state.
      Witness search: an instance committed after ρ1 that is illegal after
      ρ2. *)
  let is_accessor ty =
    List.find_map
      (fun p1 ->
        let s1 = R.replay p1 in
        List.find_map
          (fun (i : instance) ->
            List.find_map
              (fun p2 ->
                let s2 = R.replay p2 in
                if not (legal_after s2 [ i ]) then
                  Some
                    {
                      prefix = p2;
                      instances = [ i ];
                      note = "instance committed after another prefix is illegal here";
                    }
                else None)
              D.sample_prefixes)
          (instances_of_type ty s1))
      D.sample_prefixes

  let is_pure_mutator ty = is_mutator ty <> None && is_accessor ty = None
  let is_pure_accessor ty = is_accessor ty <> None && is_mutator ty = None

  (** Definition D.5: a mutator is a non-overwriter when ρ∘op1∘op2 and ρ∘op2
      can differ — i.e. the latest instance does not fully determine the
      state. *)
  let is_non_overwriter ty =
    List.find_map
      (fun prefix ->
        let s = R.replay prefix in
        let insts = instances_of_type ty s in
        List.find_map
          (fun ((i1 : instance), (i2 : instance)) ->
            let via_both = R.run_instances s [ i1 ] in
            match via_both with
            | None -> None
            | Some s1 -> (
                let s12, _ = D.apply s1 i2.op in
                let s2, _ = D.apply s i2.op in
                (* Note: op2's *state effect* after different prefixes is
                   what matters; compare end states. *)
                if not (R.equivalent s12 s2) then
                  Some { prefix; instances = [ i1; i2 ]; note = "ρ∘op1∘op2 ≢ ρ∘op2" }
                else None))
          (Prelude.Combinatorics.ordered_pairs insts insts))
      D.sample_prefixes

  let is_overwriter ty = is_mutator ty <> None && is_non_overwriter ty = None

  (** One-line summary of everything we can determine about an operation
      type, used by the CLI [classify] command and tests. *)
  type summary = {
    op_ty : string;
    mutator : bool;
    accessor : bool;
    pure_mutator : bool;
    pure_accessor : bool;
    imm_non_self_commuting : bool;
    strongly_imm_non_self_commuting : bool;
    ev_non_self_commuting : bool;
    overwriter : bool;
    non_overwriter : bool;
  }

  let summarize ty =
    {
      op_ty = ty;
      mutator = is_mutator ty <> None;
      accessor = is_accessor ty <> None;
      pure_mutator = is_pure_mutator ty;
      pure_accessor = is_pure_accessor ty;
      imm_non_self_commuting = immediately_non_self_commuting ty <> None;
      strongly_imm_non_self_commuting =
        strongly_immediately_non_self_commuting ty <> None;
      ev_non_self_commuting = eventually_non_self_commuting ty <> None;
      overwriter = is_overwriter ty;
      non_overwriter = is_non_overwriter ty <> None;
    }

  let pp_summary fmt s =
    let flag name b = if b then Some name else None in
    let flags =
      List.filter_map Fun.id
        [
          flag "mutator" s.mutator;
          flag "accessor" s.accessor;
          flag "pure-mutator" s.pure_mutator;
          flag "pure-accessor" s.pure_accessor;
          flag "imm-non-self-commuting" s.imm_non_self_commuting;
          flag "strongly-imm-non-self-commuting" s.strongly_imm_non_self_commuting;
          flag "ev-non-self-commuting" s.ev_non_self_commuting;
          flag "overwriter" s.overwriter;
          flag "non-overwriter" s.non_overwriter;
        ]
    in
    Format.fprintf fmt "%-12s %s" s.op_ty (String.concat ", " flags)
end
