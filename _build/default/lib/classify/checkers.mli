(** Executable checkers for the operation-type properties of Chapter II.

    Existential properties (immediately non-commuting, eventually
    non-self-commuting, mutator, accessor, non-overwriter, …) are decided
    by searching the data type's sample universe for a concrete witness,
    which is returned for display.  Universal properties (immediately /
    eventually self-commuting, overwriter) are the bounded negation: no
    witness exists in the universe.  On the paper's examples the universes
    are chosen to contain the paper's own witnesses, so the bounded checks
    agree with the true properties. *)

open Spec

module Make (D : Data_type.SAMPLED) : sig
  type instance = (D.op, D.result) Data_type.Instance.t

  type witness = {
    prefix : D.op list;  (** the sequence ρ *)
    instances : instance list;
    note : string;
  }

  val pp_witness : Format.formatter -> witness -> unit

  (** {2 Commutation (Definitions B.1–B.3, C.3, C.6)} *)

  val immediately_non_commuting : string -> string -> witness option
  (** ρ∘op1 and ρ∘op2 each legal, at least one order of the two illegal. *)

  val immediately_non_self_commuting : string -> witness option
  val strongly_immediately_non_self_commuting : string -> witness option

  val immediately_self_commuting : string -> bool
  (** Bounded universal: no immediate non-self-commutation witness. *)

  val eventually_non_self_commuting : string -> witness option
  (** Both single extensions legal and the two orders non-equivalent. *)

  val eventually_self_commuting : string -> bool

  (** {2 Permutation properties (Definitions C.4 / C.5)} *)

  type permuting_verdict = {
    holds : bool;
    legal_permutations : instance list list;
    reason : string;
  }

  val non_self_any_permuting_at :
    prefix:D.op list -> instances:instance list -> permuting_verdict
  (** Any two different legal permutations of [instances] after [prefix]
      are non-equivalent. *)

  val non_self_last_permuting_at :
    prefix:D.op list -> instances:instance list -> permuting_verdict
  (** Any two legal permutations with different *last* operations are
      non-equivalent. *)

  val eventually_non_self_any_permuting : k:int -> string -> witness option
  val eventually_non_self_last_permuting : k:int -> string -> witness option

  (** {2 Mutators, accessors, overwriters (Definitions D.1–D.5)} *)

  val is_mutator : string -> witness option
  val is_accessor : string -> witness option
  val is_pure_mutator : string -> bool
  val is_pure_accessor : string -> bool

  val is_non_overwriter : string -> witness option
  (** Some ρ∘op1∘op2 is not equivalent to ρ∘op2 — the latest instance does
      not fully determine the state. *)

  val is_overwriter : string -> bool

  (** {2 Summaries} *)

  type summary = {
    op_ty : string;
    mutator : bool;
    accessor : bool;
    pure_mutator : bool;
    pure_accessor : bool;
    imm_non_self_commuting : bool;
    strongly_imm_non_self_commuting : bool;
    ev_non_self_commuting : bool;
    overwriter : bool;
    non_overwriter : bool;
  }

  val summarize : string -> summary
  val pp_summary : Format.formatter -> summary -> unit
end
