(** Deriving the bound tables from the algebra.

    Chapter VI's Tables I–IV are hand-assembled from the classification of
    each operation (Chapter II) and the three theorems.  This module closes
    the loop mechanically: given any sampled data type, it classifies each
    operation type with {!Classify} and derives the thesis' lower/upper
    bound for it —

    - pure accessor                         → upper d + ε − X (no new LB);
    - pure mutator, eventually non-self-last-permuting (Thm D.1)
                                            → LB (1 − 1/k)u, upper ε + X;
    - strongly immediately non-self-commuting (Thm C.1)
                                            → LB d + m, upper d + ε;
    - ⟨pure mutator, pure accessor⟩ pair satisfying Theorem E.1's
      hypotheses A/B/C                      → LB d + m, upper d + 2ε;
    - immediately non-commuting pair otherwise (e.g. the mutator is an
      overwriter, like write)               → LB d (Kosa), upper d + 2ε.

    A test asserts the derived tables agree with the transcribed ones —
    and the derivation also *exposes* where the thesis' tables need extra
    assumptions: with a strictly top-only stack peek, or with the
    explicit-parent rooted tree and a whole-tree depth, hypothesis A of
    Theorem E.1 fails and only the weaker d bound is derivable.  See
    EXPERIMENTS.md. *)

open Spec

type derived_row = {
  subject : string;  (** operation type, or "op + aop" for a pair *)
  lower : Formulas.formula option;
  upper : Formulas.formula;
  rationale : string;
}

let pp_row params fmt r =
  Format.fprintf fmt "%-18s LB %-18s UB %-12s (%s)" r.subject
    (match r.lower with
    | Some l -> Printf.sprintf "%s = %d" l.symbolic (l.eval params)
    | None -> "—")
    (Printf.sprintf "%s = %d" r.upper.symbolic (r.upper.eval params))
    r.rationale

module Make (D : Data_type.SAMPLED) = struct
  module C = Classify.Checkers.Make (D)
  module R = Data_type.Run (D)

  (* ---- Theorem E.1 hypotheses, executable ----
     Search for ρ, op1, op2 ∈ OP and accessor instances such that each of
     A, B, C holds: exactly one of the two sequences is legal. *)

  let accessor_candidates aop_ty states =
    (* commit every sample accessor at each relevant state *)
    List.concat_map
      (fun st ->
        D.sample_ops
        |> List.filter (fun op -> String.equal (D.op_type op) aop_ty)
        |> List.map (fun op -> Data_type.Instance.make op (R.result_after st op)))
      states

  let exactly_one_legal st1 seq1 st2 seq2 =
    (* instances seq1 after st1 vs seq2 after st2: exactly one legal *)
    R.sequence_legal st1 seq1 <> R.sequence_legal st2 seq2

  (** Do [op_ty] (pure mutator) and [aop_ty] (pure accessor) satisfy
      assumptions A, B and C of Theorem E.1 for a single (ρ, op1, op2)? *)
  let e1_hypotheses op_ty aop_ty =
    C.immediately_self_commuting op_ty
    && C.is_pure_mutator op_ty && C.is_pure_accessor aop_ty
    &&
    let mutators st =
      D.sample_ops
      |> List.filter (fun op -> String.equal (D.op_type op) op_ty)
      |> List.map (fun op -> Data_type.Instance.make op (R.result_after st op))
    in
    List.exists
      (fun prefix ->
        let s0 = R.replay prefix in
        let ops = mutators s0 in
        List.exists
          (fun ((op1 : _ Data_type.Instance.t), (op2 : _ Data_type.Instance.t)) ->
            (not (D.equal_op op1.op op2.op))
            &&
            match
              ( R.run_instances s0 [ op1 ],
                R.run_instances s0 [ op2 ],
                R.run_instances s0 [ op1; op2 ],
                R.run_instances s0 [ op2; op1 ] )
            with
            | Some s1, Some s2, Some s12, Some s21 ->
                let holds cond_states check =
                  let aops = accessor_candidates aop_ty cond_states in
                  List.exists check aops
                in
                (* A: ρ∘op1∘aop1 vs ρ∘op2∘op1∘aop1 *)
                holds [ s1; s21 ] (fun a -> exactly_one_legal s1 [ a ] s21 [ a ])
                (* B: ρ∘op2∘aop2 vs ρ∘op1∘op2∘aop2 *)
                && holds [ s2; s12 ] (fun a -> exactly_one_legal s2 [ a ] s12 [ a ])
                (* C: ρ∘op1∘op2∘aop3 vs ρ∘op2∘op1∘aop3 *)
                && holds [ s12; s21 ] (fun a -> exactly_one_legal s12 [ a ] s21 [ a ])
            | _ -> false)
          (Prelude.Combinatorics.ordered_pairs ops ops))
      D.sample_prefixes

  (* ---- per-operation derivation ---- *)

  let derive_op ty =
    if C.is_pure_accessor ty then
      {
        subject = ty;
        lower = None;
        upper = Formulas.accessor_upper;
        rationale = "pure accessor (AOP)";
      }
    else if C.is_pure_mutator ty then
      (* Thm D.1 is parameterized by the number k of concurrent instances
         whose last-permuting property holds: write/push/enqueue reach any
         k (so k = n and the bound (1 − 1/n)u); BST insert only reaches
         k = 2 (two non-equivalent orders exist, but with three inserts two
         different-last permutations can coincide), recovering the previous
         u/2 bound. *)
      if C.eventually_non_self_last_permuting ~k:3 ty <> None then
        {
          subject = ty;
          lower = Some Formulas.frac_u;
          upper = Formulas.mutator_upper;
          rationale = "pure mutator, eventually non-self-last-permuting (Thm D.1, k = n)";
        }
      else if C.eventually_non_self_last_permuting ~k:2 ty <> None then
        {
          subject = ty;
          lower = Some Formulas.half_u;
          upper = Formulas.mutator_upper;
          rationale = "pure mutator, last-permuting only at k = 2 (Thm D.1 gives u/2)";
        }
      else
        {
          subject = ty;
          lower = None;
          upper = Formulas.mutator_upper;
          rationale = "pure mutator, order-insensitive: no improved lower bound";
        }
    else if C.strongly_immediately_non_self_commuting ty <> None then
      {
        subject = ty;
        lower = Some Formulas.d_plus_m;
        upper = Formulas.d_plus_eps;
        rationale = "strongly immediately non-self-commuting (Thm C.1)";
      }
    else if C.immediately_non_self_commuting ty <> None then
      {
        subject = ty;
        lower = Some Formulas.just_d;
        upper = Formulas.d_plus_eps;
        rationale = "immediately non-self-commuting but not strongly (Kosa's d only)";
      }
    else
      {
        subject = ty;
        lower = None;
        upper = Formulas.d_plus_eps;
        rationale = "mixed mutator/accessor, no applicable theorem";
      }

  (* ---- pair derivation ---- *)

  let derive_pair op_ty aop_ty =
    if not (C.is_pure_mutator op_ty && C.is_pure_accessor aop_ty) then None
    else if C.immediately_non_commuting op_ty aop_ty = None then None
    else if e1_hypotheses op_ty aop_ty then
      Some
        {
          subject = op_ty ^ " + " ^ aop_ty;
          lower = Some Formulas.d_plus_m;
          upper = Formulas.d_plus_2eps;
          rationale = "Thm E.1: hypotheses A/B/C hold (non-overwriting mutator)";
        }
    else
      Some
        {
          subject = op_ty ^ " + " ^ aop_ty;
          lower = Some Formulas.just_d;
          upper = Formulas.d_plus_2eps;
          rationale = "immediately non-commuting pair; E.1 hypotheses fail (d only)";
        }

  (** The full derived table: one row per operation type, plus one per
      applicable ⟨mutator, accessor⟩ pair. *)
  let derive () =
    let singles = List.map derive_op D.op_types in
    let pairs =
      List.filter_map
        (fun (m, a) -> if m = a then None else derive_pair m a)
        (Prelude.Combinatorics.ordered_pairs D.op_types D.op_types)
    in
    singles @ pairs

  let find rows subject =
    List.find_opt (fun r -> String.equal r.subject subject) rows
end
