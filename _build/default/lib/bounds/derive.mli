(** Deriving the bound tables from the algebra: classify each operation
    type of a data type (Chapter II) and apply the matching theorem
    (C.1, D.1 at the achievable k, E.1 with its hypotheses A/B/C checked
    executably) to produce the thesis' table rows mechanically.  Tests
    assert the derived tables agree with the transcribed Tables I–IV — and
    the derivation also exposes where the thesis needs extra assumptions
    (top-only stack peek, order-observable tree deletes); see
    EXPERIMENTS.md. *)

open Spec

type derived_row = {
  subject : string;  (** operation type, or ["op + aop"] for a pair *)
  lower : Formulas.formula option;
  upper : Formulas.formula;
  rationale : string;
}

val pp_row : Core.Params.t -> Format.formatter -> derived_row -> unit

module Make (D : Data_type.SAMPLED) : sig
  val e1_hypotheses : string -> string -> bool
  (** Do the mutator and accessor types satisfy assumptions A, B and C of
      Theorem E.1 for a single (ρ, op1, op2) in the sample universe? *)

  val derive_op : string -> derived_row
  val derive_pair : string -> string -> derived_row option

  val derive : unit -> derived_row list
  (** One row per operation type plus one per applicable
      ⟨pure mutator, pure accessor⟩ immediately non-commuting pair. *)

  val find : derived_row list -> string -> derived_row option
end
