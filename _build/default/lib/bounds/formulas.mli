(** Closed-form time bounds of the thesis, Tables I–IV (Chapter VI): per
    table row, the previous lower bound from the literature, the thesis'
    new lower bound, and the upper bound realized by Algorithm 1 — as
    symbolic formulas evaluable at concrete system parameters. *)

type formula = { symbolic : string; eval : Core.Params.t -> int }

val f : string -> (Core.Params.t -> int) -> formula

(** {2 Shared formulas} *)

(** [d_plus_m] is d + min\{ε, u, d/3\} (Theorems C.1/E.1); [half_u] is the
    previous u/2 bounds; [frac_u] is (1 − 1/n)·u (Theorem D.1 at k = n);
    [accessor_upper] is d + ε − X and [mutator_upper] is ε + X (Algorithm
    1's latencies). *)

val d_plus_m : formula

val just_d : formula
val half_u : formula
val frac_u : formula
val d_plus_eps : formula
val d_plus_2eps : formula
val just_eps : formula
val accessor_upper : formula
val mutator_upper : formula

(** {2 Tables} *)

type row = {
  operation : string;
  previous_lower : formula;
  lower : formula option;  (** the thesis' bound; [None] for "—" cells *)
  upper : formula;
  tightness : string;
}

type table = { id : string; title : string; rows : row list }

(** [register] is Table I, [queue] Table II, [stack] Table III and [tree]
    Table IV of the thesis. *)

val register : table

val queue : table
val stack : table
val tree : table
val all_tables : table list

val pp_formula : Core.Params.t -> Format.formatter -> formula -> unit
val pp_row : Core.Params.t -> Format.formatter -> row -> unit
val pp_table : Core.Params.t -> Format.formatter -> table -> unit
