(** Closed-form time bounds of the thesis, Tables I–IV (Chapter VI).

    Each table row carries the *previous* lower bound (from the literature
    the thesis improves on), the thesis' new lower bound, and the upper
    bound realized by Algorithm 1 — all as symbolic formulas evaluable at
    concrete system parameters.  The benchmark harness prints these next to
    the latencies actually measured in the simulator. *)

type formula = {
  symbolic : string;
  eval : Core.Params.t -> int;
}

let f symbolic eval = { symbolic; eval }

(* Shared formulas.  m = min{ε, u, d/3} is the slack of Theorems C.1/E.1. *)
let d_plus_m =
  f "d + min{ε,u,d/3}" (fun p -> p.Core.Params.d + Core.Params.slack p)

let just_d = f "d" (fun p -> p.Core.Params.d)
let half_u = f "u/2" (fun p -> p.Core.Params.u / 2)

let frac_u =
  f "(1−1/n)u" (fun p -> Core.Params.optimal_eps ~n:p.Core.Params.n ~u:p.Core.Params.u)

let d_plus_eps = f "d + ε" (fun p -> p.Core.Params.d + p.Core.Params.eps)

let d_plus_2eps =
  f "d + 2ε" (fun p -> p.Core.Params.d + (2 * p.Core.Params.eps))

let just_eps = f "ε" (fun p -> p.Core.Params.eps)

(* Pure accessor upper bound: d + ε − X, which is u at X = d + ε − u. *)
let accessor_upper =
  f "d + ε − X" (fun p -> p.Core.Params.d + p.Core.Params.eps - p.Core.Params.x)

let mutator_upper =
  f "ε + X" (fun p -> p.Core.Params.eps + p.Core.Params.x)

type row = {
  operation : string;
  previous_lower : formula;
  lower : formula option;  (** the thesis' bound; [None] for the "—" cells *)
  upper : formula;
  tightness : string;
}

type table = { id : string; title : string; rows : row list }

(* Table I, p. 75. *)
let register =
  {
    id = "table1";
    title = "Operation Time Bounds on Read/Write/Read-Modify-Write Register";
    rows =
      [
        {
          operation = "read-modify-write";
          previous_lower = just_d;
          lower = Some d_plus_m;
          upper = d_plus_eps;
          tightness = "tight when ε ≤ u and ε ≤ d/3 (Thm C.1)";
        };
        {
          operation = "write";
          previous_lower = half_u;
          lower = Some frac_u;
          upper = mutator_upper;
          tightness = "tight at optimal ε = (1−1/n)u with X = 0 (Thm D.1)";
        };
        {
          operation = "read";
          previous_lower = half_u;
          lower = None;
          upper = accessor_upper;
          tightness = "u at X = d+ε−u; gap u/2 to the lower bound of [1]";
        };
        {
          operation = "write + read";
          previous_lower = just_d;
          lower = Some just_d;
          upper = d_plus_2eps;
          tightness = "gap 2ε (write overwrites, so Thm E.1 does not apply)";
        };
      ];
  }

(* Table II, p. 75. *)
let queue =
  {
    id = "table2";
    title = "Operation Time Bounds on Queue";
    rows =
      [
        {
          operation = "enqueue";
          previous_lower = half_u;
          lower = Some frac_u;
          upper = mutator_upper;
          tightness = "tight at optimal ε with X = 0 (Thm D.1)";
        };
        {
          operation = "dequeue";
          previous_lower = just_d;
          lower = Some d_plus_m;
          upper = d_plus_eps;
          tightness = "tight when ε ≤ u and ε ≤ d/3 (Thm C.1)";
        };
        {
          operation = "enqueue + peek";
          previous_lower = just_d;
          lower = Some d_plus_m;
          upper = d_plus_2eps;
          tightness = "Thm E.1 (enqueue is a non-overwriter); gap ε at ε=m";
        };
      ];
  }

(* Table III, p. 76. *)
let stack =
  {
    id = "table3";
    title = "Operation Time Bounds on Stack";
    rows =
      [
        {
          operation = "push";
          previous_lower = half_u;
          lower = Some frac_u;
          upper = mutator_upper;
          tightness = "tight at optimal ε with X = 0 (Thm D.1)";
        };
        {
          operation = "pop";
          previous_lower = just_d;
          lower = Some d_plus_m;
          upper = d_plus_eps;
          tightness = "tight when ε ≤ u and ε ≤ d/3 (Thm C.1)";
        };
        {
          operation = "push + peek";
          previous_lower = just_d;
          lower = Some d_plus_m;
          upper = d_plus_2eps;
          tightness = "Thm E.1 (push is a non-overwriter); gap ε at ε=m";
        };
      ];
  }

(* Table IV, p. 76. *)
let tree =
  {
    id = "table4";
    title = "Operation Time Bounds on Tree";
    rows =
      [
        {
          operation = "insert";
          previous_lower = half_u;
          lower = Some frac_u;
          upper = mutator_upper;
          tightness = "tight at optimal ε with X = 0 (Thm D.1)";
        };
        {
          operation = "delete";
          previous_lower = half_u;
          lower = Some frac_u;
          upper = mutator_upper;
          tightness = "tight at optimal ε with X = 0 (Thm D.1)";
        };
        {
          operation = "insert + depth";
          previous_lower = just_d;
          lower = Some d_plus_m;
          upper = d_plus_2eps;
          tightness = "Thm E.1 (insert is a non-overwriter); gap ε at ε=m";
        };
        {
          operation = "delete + depth";
          previous_lower = just_d;
          lower = Some d_plus_m;
          upper = d_plus_2eps;
          tightness = "Thm E.1 (delete is a non-overwriter); gap ε at ε=m";
        };
      ];
  }

let all_tables = [ register; queue; stack; tree ]

let pp_formula params fmt fm =
  Format.fprintf fmt "%s = %d" fm.symbolic (fm.eval params)

let pp_row params fmt r =
  Format.fprintf fmt "%-18s | prev LB %-14s | LB %-24s | UB %s"
    r.operation
    (Format.asprintf "%a" (pp_formula params) r.previous_lower)
    (match r.lower with
    | Some l -> Format.asprintf "%a" (pp_formula params) l
    | None -> "—")
    (Format.asprintf "%a" (pp_formula params) r.upper)

let pp_table params fmt t =
  Format.fprintf fmt "%s (%a)@." t.title Core.Params.pp params;
  List.iter (fun r -> Format.fprintf fmt "  %a@." (pp_row params) r) t.rows
