lib/bounds/derive.mli: Core Data_type Format Formulas Spec
