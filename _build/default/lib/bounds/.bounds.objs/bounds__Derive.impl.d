lib/bounds/derive.ml: Classify Data_type Format Formulas List Prelude Printf Spec String
