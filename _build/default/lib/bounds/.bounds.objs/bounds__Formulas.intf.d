lib/bounds/formulas.mli: Core Format
