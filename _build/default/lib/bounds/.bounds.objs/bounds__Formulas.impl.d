lib/bounds/formulas.ml: Core Format List
