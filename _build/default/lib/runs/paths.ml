(** All-pairs shortest path distances over the complete directed graph whose
    edge (k1, k2) is weighted with the pairwise-uniform message delay
    d_{k1,k2} — the distances D_{j,k} used to place the view cut-points in
    the chopping construction (Chapter IV.B.1). *)

let floyd_warshall (w : int array array) : int array array =
  let n = Array.length w in
  let dist = Array.init n (fun i -> Array.init n (fun j -> if i = j then 0 else w.(i).(j))) in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if dist.(i).(k) + dist.(k).(j) < dist.(i).(j) then
          dist.(i).(j) <- dist.(i).(k) + dist.(k).(j)
      done
    done
  done;
  dist
