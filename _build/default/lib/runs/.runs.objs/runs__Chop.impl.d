lib/runs/chop.ml: Array Config List Paths Prelude Sim
