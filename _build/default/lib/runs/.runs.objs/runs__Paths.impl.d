lib/runs/paths.ml: Array
