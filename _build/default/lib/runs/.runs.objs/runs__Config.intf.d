lib/runs/config.mli: Format Sim
