lib/runs/chop.mli: Config Prelude Sim
