lib/runs/paths.mli:
