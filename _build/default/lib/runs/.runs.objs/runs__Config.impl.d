lib/runs/config.ml: Array Format List Sim String
