(** Shortest-path distances over the complete directed delay graph — the
    D_{j,k} used to place the view cut-points in the chopping construction
    (Chapter IV.B.1). *)

val floyd_warshall : int array array -> int array array
(** All-pairs shortest paths; diagonal distances are 0. *)
