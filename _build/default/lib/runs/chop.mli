(** Chopping and extending — steps two and three of the modified time shift
    (Chapter IV.B, Lemma B.1).

    After an aggressive shift, exactly one ordered pair may carry an
    invalid delay; [cut_points] computes where each process's view must be
    cut so the prefix is admissible, and [extended_delays] re-delivers the
    offending messages with a chosen admissible delay, yielding a complete
    admissible run that agrees with the chopped prefix. *)

type cut = {
  view_ends : Prelude.Ticks.t array;
      (** the engine drops all events of process k at/after
          [view_ends.(k)] *)
  t_star : Prelude.Ticks.t;  (** t* = ts + min(d_{i,j}, δ) *)
  first_send : Prelude.Ticks.t;  (** ts, the first offending send *)
}

val cut_points :
  'op Config.t ->
  trace:('a, 'b, 'c) Sim.Trace.t ->
  invalid:int * int ->
  delta:int ->
  cut option
(** [cut_points config ~trace ~invalid:(i, j) ~delta] with δ ∈ [d − u, d].
    [None] when the run contains no i→j message (nothing to chop).
    Raises [Invalid_argument] if δ is out of range. *)

val extension_policy : 'op Config.t -> invalid:int * int -> delta':int -> Sim.Delay.t
(** Delay policy of the extended complete run: the offending pair's
    messages take [delta'] (δ ≤ δ' ≤ d), everything else follows the
    original matrix. *)

val extended_delays : 'op Config.t -> invalid:int * int -> delta':int -> int array array
(** The extended run's (still pairwise-uniform) delay matrix. *)
