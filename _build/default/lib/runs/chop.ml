(** Chopping and extending — the second and third steps of the modified time
    shift (Chapter IV.B, Lemma B.1).

    After an aggressive shift, exactly one ordered pair (i, j) may carry an
    invalid delay.  [chop] computes, for a given δ ∈ [d − u, d], the real
    time at which each process's view must be cut so that the prefix is
    admissible:

    - let ts be the send time of the *first* message from p_i to p_j in the
      run (from the executed trace);
    - t* = ts + min(d_{i,j}, δ);
    - V_j ends just before t*; every other V_k ends just before t* + D_{j,k},
      where D is the shortest-path distance matrix over the delay graph.

    [extension_policy] then realizes the "extend to a complete run" step:
    re-deliver every chopped i→j message with a chosen admissible delay
    δ' ∈ [δ, d].  Because processes are deterministic, re-executing under
    the overridden policy yields a complete admissible run whose prefix
    (up to the cut points) coincides with the chopped run. *)

type cut = {
  view_ends : Prelude.Ticks.t array;
      (** engine drops all events of process k at/after [view_ends.(k)] *)
  t_star : Prelude.Ticks.t;
  first_send : Prelude.Ticks.t;  (** ts *)
}

(** [cut_points config ~trace ~invalid:(i, j) ~delta].  Returns [None] when
    the run contains no i→j message (nothing to chop: the run is admissible
    as-is). *)
let cut_points (config : _ Config.t) ~(trace : (_, _, _) Sim.Trace.t)
    ~invalid:(i, j) ~delta =
  if delta < config.d - config.u || delta > config.d then
    invalid_arg "Chop.cut_points: δ must lie in [d − u, d]";
  let first =
    List.find_opt
      (fun (m : _ Sim.Trace.message_record) -> m.src = i && m.dst = j)
      trace.messages
  in
  match first with
  | None -> None
  | Some m ->
      let ts = m.send_real in
      let t_star = ts + min config.delays.(i).(j) delta in
      let dist = Paths.floyd_warshall config.delays in
      let view_ends =
        Array.init config.n (fun k ->
            if k = j then t_star else t_star + dist.(j).(k))
      in
      Some { view_ends; t_star; first_send = ts }

(** Delay policy for the extended complete run: messages from [i] to [j]
    take [delta'] (which must satisfy δ ≤ δ' ≤ d so the re-delivered message
    arrives after V_j's cut and admissibly); all other delays follow the
    original matrix. *)
let extension_policy (config : _ Config.t) ~invalid:(i, j) ~delta' : Sim.Delay.t =
 fun ~src ~dst ~send_time ~index ->
  if src = i && dst = j then delta'
  else Sim.Delay.matrix config.delays ~src ~dst ~send_time ~index

(** The delay matrix of the extended run (still pairwise uniform). *)
let extended_delays (config : _ Config.t) ~invalid:(i, j) ~delta' =
  let m = Array.map Array.copy config.delays in
  m.(i).(j) <- delta';
  m
