(** Run configurations for the lower-bound constructions of Chapter IV.

    Every run in those proofs has a fixed shape: pairwise-uniform message
    delays, fixed clock offsets, and a finite invocation script.  Because
    processes are deterministic state machines, a configuration fully
    determines the run — so the proofs' manipulations (time shifts, chops,
    extensions) become *configuration transformations*, and "the shifted
    run" is obtained by re-executing the protocol under the transformed
    configuration. *)

type 'op t = {
  n : int;
  d : int;  (** message delay upper bound *)
  u : int;  (** message delay uncertainty: delays live in [d − u, d] *)
  eps : int;  (** clock skew bound ε *)
  offsets : int array;  (** clock offsets c_i *)
  delays : int array array;  (** pairwise-uniform delay matrix *)
  script : 'op Sim.Workload.invocation list;
}

val make :
  n:int ->
  d:int ->
  u:int ->
  eps:int ->
  ?offsets:int array ->
  ?delays:int array array ->
  script:'op Sim.Workload.invocation list ->
  unit ->
  'op t
(** Defaults: zero offsets, all delays [d]. *)

val invalid_delays : 'op t -> (int * int) list
(** Ordered pairs whose delay violates [d − u ≤ d_{i,j} ≤ d]. *)

val skew : 'op t -> int

val is_admissible : 'op t -> bool
(** Admissibility per Chapter III.B.3: delays in range and skew ≤ ε. *)

val shift : 'op t -> x:int array -> 'op t
(** The standard time shift (Chapter IV.A): process [i]'s view moves
    [x.(i)] later in real time — offsets become [c_i − x_i], delays follow
    formula (4.1) [d'_{i,j} = d_{i,j} − x_i + x_j], scripted invocations of
    process [i] move [x_i] later.  The result is again a run (Claim B.3)
    but need not be admissible. *)

val delay_policy : 'op t -> Sim.Delay.t
val pp : Format.formatter -> 'op t -> unit
