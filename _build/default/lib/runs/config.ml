(** Run configurations for the lower-bound constructions of Chapter IV.

    Every run in those proofs has a specific shape: pairwise-uniform message
    delays (d_{i,j} fixed per ordered pair), fixed clock offsets, and a
    finite invocation script.  Because processes are deterministic state
    machines, a configuration fully determines the run — so the proofs'
    manipulations (time shifts, chops, extensions) become *configuration
    transformations*, and "the shifted run" is obtained by re-executing the
    protocol under the transformed configuration.  The standard-shift lemma
    then predicts that no process can locally distinguish the two runs;
    tests assert exactly that prediction on real executions. *)

type 'op t = {
  n : int;
  d : int;  (** message delay upper bound *)
  u : int;  (** message delay uncertainty: delays live in [d − u, d] *)
  eps : int;  (** clock skew bound ε *)
  offsets : int array;  (** clock offsets c_i: clock_i = real + c_i *)
  delays : int array array;  (** pairwise uniform delay matrix (diagonal unused) *)
  script : 'op Sim.Workload.invocation list;
}

let make ~n ~d ~u ~eps ?offsets ?delays ~script () =
  let offsets = match offsets with Some o -> o | None -> Array.make n 0 in
  let delays =
    match delays with Some m -> m | None -> Array.make_matrix n n d
  in
  { n; d; u; eps; offsets; delays; script }

(** Ordered pairs (i, j) whose delay violates [d − u ≤ d_{i,j} ≤ d]. *)
let invalid_delays t =
  let bad = ref [] in
  for i = t.n - 1 downto 0 do
    for j = t.n - 1 downto 0 do
      if i <> j && (t.delays.(i).(j) < t.d - t.u || t.delays.(i).(j) > t.d) then
        bad := (i, j) :: !bad
    done
  done;
  !bad

let skew t =
  let mx = Array.fold_left max t.offsets.(0) t.offsets
  and mn = Array.fold_left min t.offsets.(0) t.offsets in
  mx - mn

(** Admissibility per Chapter III.B.3: all delays in range and clock skew
    within ε. *)
let is_admissible t = invalid_delays t = [] && skew t <= t.eps

(** Standard time shift (Chapter IV.A).  [shift t ~x] moves process [i]'s
    entire timed view [x.(i)] later in real time:

    - clock offsets become [c_i − x_i] (each step keeps its clock time);
    - delays follow formula (4.1): [d'_{i,j} = d_{i,j} − x_i + x_j];
    - scripted invocations of process [i] move [x_i] later.

    By Claim B.3 the result is again a run; it need not be admissible —
    that is the whole point of the modified shift. *)
let shift t ~x =
  if Array.length x <> t.n then invalid_arg "Config.shift: |x| <> n";
  {
    t with
    offsets = Array.init t.n (fun i -> t.offsets.(i) - x.(i));
    delays =
      Array.init t.n (fun i ->
          Array.init t.n (fun j -> t.delays.(i).(j) - x.(i) + x.(j)));
    script =
      List.map
        (fun (inv : _ Sim.Workload.invocation) ->
          { inv with not_before = inv.not_before + x.(inv.pid) })
        t.script;
  }

(** The delay policy a configuration induces. *)
let delay_policy t = Sim.Delay.matrix t.delays

let pp fmt t =
  Format.fprintf fmt "n=%d d=%d u=%d ε=%d offsets=[%s] delays=[%s]" t.n t.d
    t.u t.eps
    (String.concat ";" (Array.to_list (Array.map string_of_int t.offsets)))
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun row ->
               String.concat "," (Array.to_list (Array.map string_of_int row)))
             t.delays)))
