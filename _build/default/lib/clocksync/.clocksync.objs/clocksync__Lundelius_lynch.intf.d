lib/clocksync/lundelius_lynch.mli: Sim
