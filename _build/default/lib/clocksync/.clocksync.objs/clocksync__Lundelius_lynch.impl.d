lib/clocksync/lundelius_lynch.ml: Array List Prelude Sim
