(** Clock drift — the first future-work item of the thesis' conclusion
    ("the partially synchronous model with bounded clock skew and bounded
    time drift needs to be explored").

    The paper's model has clocks running exactly at real-time rate;
    Algorithm 1's u + ε hold relies on it (a fast clock fires the Execute
    timer early in real time).  We give process p0 a clock of rate 1 + ρ
    and run the strongly-non-self-commuting scenario (two concurrent RMWs):

    - p0's (d − u) + (u + ε) clock-time wait shrinks to (d + ε)/(1 + ρ)
      real time, so once ρ > (d + ε)/d − 1 = ε/d it executes its own RMW
      before the other replica's message can arrive: both RMWs return the
      initial value — not linearizable;
    - below that threshold (including the paper's ρ = 0) the family stays
      linearizable.

    With d = 1000, ε = 200 the predicted tolerance threshold is ρ = 1/5. *)

module Alg = Core.Algorithm1.Make (Spec.Register)
module Engine = Sim.Engine.Make (Alg)
module Lin = Linearize.Make (Spec.Register)

let n = 3
let d = 1000
let u = 400
let eps = 200
let t0 = 4_000

let params = Core.Params.make ~n ~d ~u ~eps ~x:0 ()

(* p1 → p0 takes the full d; p0 → p1 is fast, everything else middling. *)
let delay : Sim.Delay.t =
 fun ~src ~dst ~send_time:_ ~index:_ ->
  if src = 1 && dst = 0 then d else d - u

let run_with_rate ~num ~den =
  let clocks =
    [|
      Sim.Clock.with_drift ~offset:0 ~num ~den;
      Sim.Clock.perfect 0;
      Sim.Clock.perfect 0;
    |]
  in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Rmw 1) t0;
      Sim.Workload.at 1 (Spec.Register.Rmw 2) t0;
    ]
  in
  let out = Engine.run ~config:params ~n ~offsets:[| 0; 0; 0 |] ~clocks ~delay script in
  Lin.(is_linearizable (check_trace out.trace))

let run () =
  let b = Report.builder () in
  Report.line b "d=%d u=%d ε=%d: predicted drift tolerance ρ ≤ ε/d = 1/5" d u eps;
  let cases =
    [ ("ρ = 0 (paper's model)", 0, 1, true);
      ("ρ = 1/20", 1, 20, true);
      ("ρ = 1/8", 1, 8, true);
      ("ρ = 1/4", 1, 4, false);
      ("ρ = 1/2", 1, 2, false);
    ]
  in
  List.iter
    (fun (label, num, den, expect_lin) ->
      let lin = run_with_rate ~num ~den in
      Report.line b "%-22s → %s" label
        (if lin then "linearizable" else "VIOLATION (both RMWs claim to be first)");
      ignore
        (Report.expect b
           ~what:
             (Printf.sprintf "%s: %s as predicted" label
                (if expect_lin then "survives" else "violates"))
           (lin = expect_lin)))
    cases;
  Report.finish b ~id:"drift"
    ~title:"Future work: clock drift breaks Algorithm 1 beyond ρ = ε/d"
