(** Experiment reports: every reproduced table/figure produces one, with
    the rows/series the paper reports plus a pass/fail verdict ("did the
    run family behave as the paper predicts?"). *)

type t = {
  id : string;  (** e.g. ["fig1"], ["thm_c1"], ["table2"] *)
  title : string;
  lines : string list;
  ok : bool;
}

val make : id:string -> title:string -> ok:bool -> string list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Line-building DSL used by the experiment modules} *)

type builder

val builder : unit -> builder
val line : builder -> ('a, Format.formatter, unit, unit) format4 -> 'a

val expect : builder -> what:string -> bool -> bool
(** Record a named expectation: appends a ✓/✗ line, folds into the final
    verdict, and returns the condition. *)

val finish : builder -> id:string -> title:string -> t
