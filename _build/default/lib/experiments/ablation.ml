(** Ablations: each waiting period of Algorithm 1 is load-bearing.

    DESIGN.md calls out three design choices in the pseudocode of Chapter
    V; removing any one of them produces a concrete linearizability
    violation while the full algorithm survives the identical schedule:

    1. the u + ε hold in [To_Execute] (without it, replicas apply mutators
       in arrival order, which uncertainty decouples from timestamp order);
    2. the d − u self-delivery delay (without it, the invoker's own OOP
       races ahead of remote operations with smaller timestamps);
    3. honesty about ε (configuring the algorithm with a smaller ε than the
       clocks actually have re-creates the same race — the hold must cover
       the true skew).  Arm 3 keeps the algorithm intact and breaks the
       assumption instead. *)

module H = Harness.Make (Spec.Register)

let n = 3
let d = 1000
let u = 400
let eps = 200

let cfg ~offsets ~delays ~script : Spec.Register.op Runs.Config.t =
  Runs.Config.make ~n ~d ~u ~eps ~offsets ~delays ~script ()

let params = Core.Params.make ~n ~d ~u ~eps ~x:0 ()

(* Arm 1: two writes whose broadcasts arrive at p2 in opposite order to
   their timestamps; probes read from p0 then p2. *)
let arm1 b =
  let delays =
    (* p0's messages crawl (d); p1's sprint (d − u). *)
    Array.init n (fun src -> Array.init n (fun _ -> if src = 0 then d else d - u))
  in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Write 1) 1000;
      Sim.Workload.at 1 (Spec.Register.Write 2) 1100;
      Sim.Workload.at 0 Spec.Register.Read 5_000;
      Sim.Workload.at 2 Spec.Register.Read 8_000;
    ]
  in
  let c = cfg ~offsets:[| 0; 0; 0 |] ~delays ~script in
  let ablated = H.execute ~params:(Core.Params.without_hold params) c in
  Report.line b "arm 1 (no u+ε hold): %s" (H.history_line ablated);
  ignore
    (Report.expect b ~what:"arm 1: dropping the hold ⇒ replicas disagree ⇒ violation"
       (not (H.is_linearizable ablated)));
  let control = H.execute ~params c in
  ignore (Report.expect b ~what:"arm 1 control: full algorithm survives" (H.is_linearizable control))

(* Arm 2: two concurrent RMWs with p1's clock ε behind, so p1's timestamp
   is smaller although both are invoked together; p0 must wait d − u before
   trusting its own operation. *)
let arm2 b =
  let delays = Array.make_matrix n n d in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Rmw 1) 1000;
      Sim.Workload.at 1 (Spec.Register.Rmw 2) 1000;
    ]
  in
  let c = cfg ~offsets:[| 0; -eps; 0 |] ~delays ~script in
  let ablated = H.execute ~params:(Core.Params.without_self_delay params) c in
  Report.line b "arm 2 (no d−u self-delay): %s" (H.history_line ablated);
  ignore
    (Report.expect b ~what:"arm 2: dropping the self-delay ⇒ both RMWs claim first ⇒ violation"
       (not (H.is_linearizable ablated)));
  let control = H.execute ~params c in
  ignore (Report.expect b ~what:"arm 2 control: full algorithm survives" (H.is_linearizable control))

(* Arm 3: the clocks' real skew is 2ε but the algorithm is told ε.  p1's
   RMW is invoked a little later yet timestamps earlier; p0's u + ε hold is
   too short to wait for it. *)
let arm3 b =
  let delays = Array.make_matrix n n d in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Rmw 1) 1000;
      Sim.Workload.at 1 (Spec.Register.Rmw 2) (1000 + eps + (eps / 2));
    ]
  in
  let c =
    (* a run with skew 2ε: admissible only for an algorithm told 2ε *)
    Runs.Config.make ~n ~d ~u ~eps:(2 * eps) ~offsets:[| 0; -2 * eps; 0 |]
      ~delays ~script ()
  in
  let lied = H.execute ~params c in
  Report.line b "arm 3 (actual skew 2ε, configured ε): %s" (H.history_line lied);
  ignore
    (Report.expect b ~what:"arm 3: understating ε ⇒ violation"
       (not (H.is_linearizable lied)));
  let honest = Core.Params.make ~n ~d ~u ~eps:(2 * eps) ~x:0 () in
  let control = H.execute ~params:honest c in
  ignore
    (Report.expect b ~what:"arm 3 control: configured with the true skew, it survives"
       (H.is_linearizable control))

let run () =
  let b = Report.builder () in
  Report.line b "n=%d d=%d u=%d ε=%d X=0" n d u eps;
  arm1 b;
  arm2 b;
  arm3 b;
  Report.finish b ~id:"ablation"
    ~title:"Ablations: every wait in Algorithm 1 is load-bearing"
