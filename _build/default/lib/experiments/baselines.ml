(** Baseline comparison (Chapter I.A.3): Algorithm 1 vs the folklore 2d
    centralized implementation vs an idealized total-order broadcast.

    The headline claim of the thesis — operations can beat 2d — in
    measurable form, on the same register workload (clients p1…p4; the
    centralized coordinator p0 takes no client ops so its free local
    operations don't flatter it):

    - Algorithm 1 at X = 0: writes ε, reads d + ε, rmw ≤ d + ε;
    - TOB: everything d + ε (accessors and mutators pay full dissemination);
    - centralized: everything 2d. *)

open Spec

module A = Sim.Engine.Make (Core.Algorithm1.Make (Register))
module C = Sim.Engine.Make (Core.Centralized.Make (Register))
module T = Sim.Engine.Make (Core.Total_order.Make (Register))
module Lin = Linearize.Make (Register)

let n = 5
let d = 1200
let u = 400
let eps = Core.Params.optimal_eps ~n ~u
let params = Core.Params.make ~n ~d ~u ~eps ~x:0 ()

let script =
  let open Register in
  List.concat
    [
      Sim.Workload.seq 1 0 [ Write 1; Read; Rmw 2 ];
      Sim.Workload.seq 2 200 [ Read; Write 3; Rmw 4 ];
      Sim.Workload.seq 3 400 [ Rmw 5; Read; Write 6 ];
      Sim.Workload.seq 4 600 [ Write 7; Rmw 8; Read ];
    ]

let worst_by_kind (trace : (Register.op, Register.result, 'm) Sim.Trace.t) kind =
  Sim.Trace.max_latency ~f:(fun r -> Register.classify r.op = kind) trace

let measure name run b =
  let trace = run () in
  let lin = Lin.(is_linearizable (check_trace trace)) in
  let mut = worst_by_kind trace Data_type.Pure_mutator in
  let acc = worst_by_kind trace Data_type.Pure_accessor in
  let oop = worst_by_kind trace Data_type.Other in
  Report.line b "%-22s write %5d | read %5d | rmw %5d %s" name mut acc oop
    (if lin then "" else "(NOT LINEARIZABLE)");
  (mut, acc, oop, lin)

let offsets = Array.make n 0
let delay () = Sim.Delay.constant d

let run () =
  let b = Report.builder () in
  Report.line b "register workload, 12 client ops, n=%d d=%d u=%d ε=%d X=0" n d u eps;
  let am, aa, ao, al =
    measure "algorithm 1" (fun () -> (A.run ~config:params ~n ~offsets ~delay:(delay ()) script).trace) b
  in
  let tm, ta, to_, tl =
    measure "total-order broadcast" (fun () -> (T.run ~config:params ~n ~offsets ~delay:(delay ()) script).trace) b
  in
  let cm, ca, co, cl =
    measure "centralized (2d)" (fun () -> (C.run ~config:params ~n ~offsets ~delay:(delay ()) script).trace) b
  in
  ignore (Report.expect b ~what:"all three implementations linearizable" (al && tl && cl));
  ignore
    (Report.expect b
       ~what:
         (Printf.sprintf "mutators: algorithm 1 (%d = ε) ≪ TOB (%d = d+ε) < centralized (%d = 2d)"
            am tm cm)
       (am = eps && tm = d + eps && cm = 2 * d && am < tm && tm < cm));
  ignore
    (Report.expect b
       ~what:"accessors: algorithm 1 and TOB (d+ε) < centralized (2d)"
       (aa = d + eps && ta = d + eps && ca = 2 * d));
  ignore
    (Report.expect b ~what:"rmw: algorithm 1 and TOB (≤ d+ε) < centralized (2d)"
       (ao <= d + eps && to_ <= d + eps && co = 2 * d));
  Report.finish b ~id:"baselines"
    ~title:"Algorithm 1 vs centralized (2d) vs total-order broadcast"
