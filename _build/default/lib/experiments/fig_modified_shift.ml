(** Figures 4 and 5: the modified time shift — shift, chop, extend.

    We build a two-process run with messages in both directions (two
    concurrent writes under Algorithm 1, mutator latency shortened to 150 so
    every response lands inside the chopped views — this is a machinery
    demonstration, not a bound claim), then:

    1. shift p1's view u later: the 0→1 delay becomes d + u, *invalid* —
       this is precisely where the standard shift stops working (Fig. 4);
    2. chop (Lemma B.1): compute t* from the first offending message and cut
       every view via shortest-path distances; verify the chopped prefix is
       admissible (no delivered message has an invalid delay, the offending
       message is not delivered) and that it is a prefix of the shifted run
       (same responses, same times);
    3. extend (Fig. 5): re-deliver the offending message with δ' = d; verify
       the complete run is admissible, linearizable, and agrees with the
       chopped prefix. *)

module H = Harness.Make (Spec.Register)

let d = 1000
let u = 400
let eps = 400
let n = 2

let params =
  Core.Params.faster_mutator (Core.Params.make ~n ~d ~u ~eps ~x:0 ()) ~latency:150

let base : Spec.Register.op Runs.Config.t =
  Runs.Config.make ~n ~d ~u ~eps
    ~delays:(Array.make_matrix n n d)
    ~script:
      [
        Sim.Workload.at 0 (Spec.Register.Write 3) 0;
        Sim.Workload.at 1 (Spec.Register.Write 4) 0;
      ]
    ()

let run () =
  let b = Report.builder () in
  ignore
    (Report.expect b ~what:"original run admissible" (Runs.Config.is_admissible base));

  (* Step 1: shift p1's view u later (Fig. 4(b)). *)
  let shifted = Runs.Config.shift base ~x:[| 0; u |] in
  let invalid = Runs.Config.invalid_delays shifted in
  Report.line b "after shift: delays 0→1 = %d, 1→0 = %d"
    shifted.delays.(0).(1) shifted.delays.(1).(0);
  ignore
    (Report.expect b ~what:"exactly the 0→1 delay (d+u) is invalid"
       (invalid = [ (0, 1) ] && shifted.delays.(0).(1) = d + u));

  (* Execute the (inadmissible) shifted run to locate the offending
     message, then chop with δ = d − u. *)
  let full = H.execute ~check_lin:false ~params shifted in
  let delta = d - u in
  (match Runs.Chop.cut_points shifted ~trace:full.outcome.trace ~invalid:(0, 1) ~delta with
  | None -> ignore (Report.expect b ~what:"offending message exists" false)
  | Some cut ->
      Report.line b "chop: first 0→1 message at t=%d, t* = %d, view ends = [%d; %d]"
        cut.first_send cut.t_star cut.view_ends.(0) cut.view_ends.(1);
      ignore
        (Report.expect b ~what:"t* = ts + min(d_{0,1}, δ)"
           (cut.t_star = cut.first_send + min shifted.delays.(0).(1) delta));
      let chopped = H.execute ~check_lin:false ~view_ends:cut.view_ends ~params shifted in
      (* Lemma B.1 part 1: every message delivered in the prefix had an
         admissible delay; the offending message was not delivered. *)
      let delivered_ok =
        List.for_all
          (fun (m : _ Sim.Trace.message_record) ->
            (not m.delivered) || (m.delay >= d - u && m.delay <= d))
          chopped.outcome.trace.messages
      in
      ignore
        (Report.expect b ~what:"chopped prefix delivers only admissible messages"
           delivered_ok);
      (* Prefix property: responses inside the kept views match the
         uncut shifted run exactly. *)
      let same_responses =
        List.for_all2
          (fun (a : _ Sim.Trace.op_record) (c : _ Sim.Trace.op_record) ->
            c.result = None
            || (a.result = c.result && a.response_real = c.response_real))
          full.outcome.trace.ops chopped.outcome.trace.ops
      in
      ignore
        (Report.expect b
           ~what:"chopped run is a prefix of the shifted run (same responses)"
           same_responses);
      (* Step 3: extend with δ' = d. *)
      let extended =
        { shifted with delays = Runs.Chop.extended_delays shifted ~invalid:(0, 1) ~delta':d }
      in
      ignore
        (Report.expect b ~what:"extended run admissible (Fig. 5)"
           (Runs.Config.is_admissible extended));
      let complete = H.execute ~params extended in
      Report.line b "extended complete run: %s" (H.history_line complete);
      ignore
        (Report.expect b ~what:"extended run linearizable" (H.is_linearizable complete));
      let agrees =
        List.for_all2
          (fun (c : _ Sim.Trace.op_record) (e : _ Sim.Trace.op_record) ->
            c.result = None || (c.result = e.result && c.response_real = e.response_real))
          chopped.outcome.trace.ops complete.outcome.trace.ops
      in
      ignore
        (Report.expect b ~what:"chopped prefix agrees with the complete extension" agrees));
  Report.finish b ~id:"fig4-5" ~title:"Modified time shift: shift, chop, extend"
