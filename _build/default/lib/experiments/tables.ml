(** Tables I–IV (Chapter VI): per-operation bounds, measured.

    For each object we run Algorithm 1 over a battery of adversarial
    schedules (extreme constant delays, per-victim slow links, seeded random
    delays, staggered clock offsets), verify every run is linearizable, and
    record the worst observed latency per operation type.  The report
    prints, per table row, the thesis' previous lower bound, its new lower
    bound, the paper's upper bound, and our measured worst case.

    X convention (as in the thesis): mutator rows are measured at X = 0
    (upper bound ε), the read row at X = d + ε − u (upper bound u), pair
    rows at X = 0 (sum d + 2ε regardless of X).  Parameters n = 5, d = 1200,
    u = 400, ε = (1 − 1/n)·u = 320 — note ε ≤ u and ε ≤ d/3, the regime
    where Theorem C.1's bound is tight. *)

open Spec

let n = 5
let d = 1200
let u = 400
let eps = Core.Params.optimal_eps ~n ~u

let params_mutator = Core.Params.make ~n ~d ~u ~eps ~x:0 ()
let params_accessor = Core.Params.make ~n ~d ~u ~eps ~x:(d + eps - u) ()

let zeros = Array.make n 0

let staggered =
  Array.init n (fun i -> i * eps / (n - 1)) (* skew exactly ε *)

let schedules () : (int array * Sim.Delay.t) list =
  [
    (zeros, Sim.Delay.constant d);
    (zeros, Sim.Delay.constant (d - u));
    (staggered, Sim.Delay.constant d);
    (staggered, Sim.Delay.extremes ~d ~u ~slow_to:0);
    (zeros, Sim.Delay.extremes ~d ~u ~slow_to:2);
    (zeros, Sim.Delay.random (Prelude.Rng.make 11) ~d ~u);
    (staggered, Sim.Delay.random (Prelude.Rng.make 13) ~d ~u);
  ]

module Measure (D : Data_type.SAMPLED) = struct
  module H = Harness.Make (D)

  (** Worst observed latency per operation type over all schedules; also
      whether every run was linearizable. *)
  let worst ~params ~script : (string * int) list * bool =
    let worst = Hashtbl.create 8 in
    let all_ok = ref true in
    List.iter
      (fun (offsets, delay) ->
        let outcome =
          H.Engine.run ~config:params ~n ~offsets ~delay ~check_delays:(d, u)
            script
        in
        (match H.Lin.check_trace outcome.trace with
        | H.Lin.Linearizable _ -> ()
        | H.Lin.Not_linearizable _ -> all_ok := false);
        List.iter
          (fun (r : (D.op, D.result) Sim.Trace.op_record) ->
            match Sim.Trace.latency r with
            | Some l ->
                let ty = D.op_type r.op in
                let prev = Option.value ~default:0 (Hashtbl.find_opt worst ty) in
                Hashtbl.replace worst ty (max prev l)
            | None -> all_ok := false)
          outcome.trace.ops)
      (schedules ());
    (Hashtbl.fold (fun ty l acc -> (ty, l) :: acc) worst [], !all_ok)

  let lookup ty (measured, _) =
    Option.value ~default:(-1) (List.assoc_opt ty measured)
end

(* Staggered scripts giving every process a mix of op types; ≤ 15 ops per
   run keeps the linearizability check fast. *)

module M_reg = Measure (Register)
module M_queue = Measure (Fifo_queue)
module M_stack = Measure (Lifo_stack)
module M_tree = Measure (Rooted_tree)

let register_script =
  let open Register in
  List.concat
    [
      Sim.Workload.seq 0 0 [ Write 1; Read; Rmw 2 ];
      Sim.Workload.seq 1 150 [ Rmw 3; Write 4; Read ];
      Sim.Workload.seq 2 300 [ Read; Write 5; Rmw 6 ];
      Sim.Workload.seq 3 450 [ Write 7; Rmw 8; Read ];
      Sim.Workload.seq 4 600 [ Read; Rmw 9; Write 10 ];
    ]

let queue_script =
  let open Fifo_queue in
  List.concat
    [
      Sim.Workload.seq 0 0 [ Enqueue 1; Peek; Dequeue ];
      Sim.Workload.seq 1 150 [ Enqueue 2; Dequeue; Peek ];
      Sim.Workload.seq 2 300 [ Peek; Enqueue 3; Dequeue ];
      Sim.Workload.seq 3 450 [ Enqueue 4; Peek; Dequeue ];
      Sim.Workload.seq 4 600 [ Dequeue; Enqueue 5; Peek ];
    ]

let stack_script =
  let open Lifo_stack in
  List.concat
    [
      Sim.Workload.seq 0 0 [ Push 1; Peek; Pop ];
      Sim.Workload.seq 1 150 [ Push 2; Pop; Peek ];
      Sim.Workload.seq 2 300 [ Peek; Push 3; Pop ];
      Sim.Workload.seq 3 450 [ Push 4; Peek; Pop ];
      Sim.Workload.seq 4 600 [ Pop; Push 5; Peek ];
    ]

let tree_script =
  let open Rooted_tree in
  List.concat
    [
      Sim.Workload.seq 0 0 [ Insert (0, 1); Depth; Search 1 ];
      Sim.Workload.seq 1 150 [ Insert (0, 2); Insert (2, 3); Depth ];
      Sim.Workload.seq 2 300 [ Search 2; Insert (1, 4); Delete 2 ];
      Sim.Workload.seq 3 450 [ Depth; Delete 1; Search 4 ];
      Sim.Workload.seq 4 600 [ Insert (0, 5); Search 5; Depth ];
    ]

type measured_row = {
  row : Bounds.Formulas.row;
  measured : int;
}

let render b (table : Bounds.Formulas.table) rows =
  Report.line b "%s  (n=%d d=%d u=%d ε=%d, m=%d)" table.title n d u eps
    (Core.Params.slack params_mutator);
  List.iter
    (fun { row; measured } ->
      let params =
        (* read row of Table I uses the accessor-optimal X *)
        if row.operation = "read" then params_accessor else params_mutator
      in
      Report.line b "  %-18s prev LB %4d | LB %s | paper UB %4d | measured %4d"
        row.operation
        (row.previous_lower.eval params)
        (match row.lower with
        | Some l -> Printf.sprintf "%4d" (l.eval params)
        | None -> "   —")
        (row.upper.eval params) measured;
      ignore
        (Report.expect b
           ~what:
             (Printf.sprintf "%s / %s: measured ≤ paper upper bound" table.id
                row.operation)
           (measured <= row.upper.eval params));
      match row.lower with
      | Some l ->
          ignore
            (Report.expect b
               ~what:
                 (Printf.sprintf "%s / %s: measured ≥ lower bound" table.id
                    row.operation)
               (measured >= l.eval params))
      | None -> ())
    rows

(* Pair rows ("write + read") sum latencies measured under a *single* X (the
   mutator-optimal one) — the paper's d + 2ε holds for any one X, but mixing
   the per-row optimal X's would describe two different implementations. *)
let op_type_of_row = function
  | "read-modify-write" -> "rmw"
  | other -> other

let rows_of table ~single ~pair =
  List.map
    (fun (row : Bounds.Formulas.row) ->
      let measured =
        match String.split_on_char '+' row.operation with
        | [ a; b' ] ->
            let get s = Option.value ~default:0 (List.assoc_opt (String.trim s) pair) in
            get a + get b'
        | _ ->
            Option.value ~default:(-1)
              (List.assoc_opt (op_type_of_row row.operation) single)
      in
      { row; measured })
    table.Bounds.Formulas.rows

let run_one b (table : Bounds.Formulas.table) measure_mut measure_acc =
  let mut, ok_m = measure_mut () in
  let acc, ok_a = measure_acc () in
  ignore
    (Report.expect b
       ~what:(table.id ^ ": every adversarial schedule stayed linearizable")
       (ok_m && ok_a));
  (* accessor-measured latencies override the mutator-measured ones only
     for the pure-accessor "read" row of Table I *)
  let single =
    List.map
      (fun (ty, l) ->
        if ty = "read" then (ty, Option.value ~default:l (List.assoc_opt ty acc))
        else (ty, l))
      mut
  in
  render b table (rows_of table ~single ~pair:mut)

let run () =
  let b = Report.builder () in
  run_one b Bounds.Formulas.register
    (fun () -> M_reg.worst ~params:params_mutator ~script:register_script)
    (fun () -> M_reg.worst ~params:params_accessor ~script:register_script);
  run_one b Bounds.Formulas.queue
    (fun () -> M_queue.worst ~params:params_mutator ~script:queue_script)
    (fun () -> M_queue.worst ~params:params_accessor ~script:queue_script);
  run_one b Bounds.Formulas.stack
    (fun () -> M_stack.worst ~params:params_mutator ~script:stack_script)
    (fun () -> M_stack.worst ~params:params_accessor ~script:stack_script);
  run_one b Bounds.Formulas.tree
    (fun () -> M_tree.worst ~params:params_mutator ~script:tree_script)
    (fun () -> M_tree.worst ~params:params_accessor ~script:tree_script);
  Report.finish b ~id:"tables" ~title:"Tables I–IV: measured vs paper bounds"
