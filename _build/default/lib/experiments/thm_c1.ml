(** Theorem C.1 (Figures 6–9): strongly immediately non-self-commuting
    operations cost at least d + m, where m = min{ε, u, d/3}.

    The proof is an adversary that manufactures a family of runs
    R1 → R′1 → R2 → R3 → R‴3 by shifting, chopping and extending; for any
    implementation whose OOPs respond faster than d + m, at least one
    complete admissible run in the family is not linearizable.  This module
    executes that adversary literally against a configurable implementation
    and reports, per run, admissibility and the linearizability verdict:

    - with Algorithm 1's timing shortened so OOPs respond in < d + m, a
      violation appears (in our instantiation, in R3 — the run where both
      instances return the same "I was first" answer, Figure 9);
    - with the standard timing (d + ε = d + m at ε = u = d/3), every run in
      the family is linearizable.

    Scenarios: read-modify-write on a register (both instances must return
    the pre-state), and dequeue on a single-element queue (both instances
    must return the lone element).  Pop on a stack is exercised by the test
    suite through the same functor. *)

open Spec

module Scenario (D : Data_type.S) = struct
  module H = Harness.Make (D)

  type t = {
    label : string;
    prefix : D.op Sim.Workload.invocation list;  (** realizes ρ, quiesced well before [t] *)
    op1 : D.op;
    op2 : D.op;
  }

  let d = 900
  let u = 300
  let eps = 300
  let t = 5_000
  let m = min eps (min u (d / 3)) (* = 300: all three terms coincide *)

  (* Delay matrix of R1 (proof, Step 1): i = p0, j = p1, k = p2. *)
  let delays_r1 () =
    let dm = Array.make_matrix 3 3 d in
    dm.(2).(0) <- d - m;
    dm.(1).(2) <- d - m;
    dm

  let config ~offsets ~delays ~script : D.op Runs.Config.t =
    Runs.Config.make ~n:3 ~d ~u ~eps ~offsets ~delays ~script ()

  (* Chop an invalid shifted configuration and extend the offending pair
     with delay [delta']; returns the complete extended configuration. *)
  let chop_and_extend ~params (shifted : D.op Runs.Config.t) ~invalid ~delta' b ~step =
    match Runs.Config.invalid_delays shifted with
    | [] ->
        Report.line b "%s: shift stayed admissible; no chop needed" step;
        shifted
    | [ pair ] when pair = invalid ->
        let probe = H.execute ~check_lin:false ~params shifted in
        (match
           Runs.Chop.cut_points shifted ~trace:probe.outcome.trace ~invalid
             ~delta:(d - m)
         with
        | Some cut ->
            Report.line b "%s: invalid %d→%d delay %d; t* = %d" step (fst invalid)
              (snd invalid)
              shifted.delays.(fst invalid).(snd invalid)
              cut.t_star
        | None -> Report.line b "%s: no offending message was ever sent" step);
        { shifted with delays = Runs.Chop.extended_delays shifted ~invalid ~delta' }
    | other ->
        Report.line b "%s: unexpected invalid delays (%d pairs)" step
          (List.length other);
        shifted

  (* Run the four-step adversary.  Returns true iff some complete
     admissible run in the family is non-linearizable. *)
  let attack b ~params (s : t) =
    let np = List.length s.prefix in
    let script_r1 =
      s.prefix @ [ Sim.Workload.at 0 s.op1 t; Sim.Workload.at 1 s.op2 (t + m) ]
    in
    let r1_cfg =
      config ~offsets:[| 0; -m; 0 |] ~delays:(delays_r1 ()) ~script:script_r1
    in
    let r1 = H.execute ~params r1_cfg in
    Report.line b "[%s] R1: %s" s.label (H.history_line r1);

    (* R′1: p0 alone — determinism gives op1's solo return value. *)
    let r1' =
      H.execute ~params
        { r1_cfg with script = s.prefix @ [ Sim.Workload.at 0 s.op1 t ] }
    in
    Report.line b "[%s] R'1 (op1 solo) returns %s" s.label
      (match H.result_of r1' np with
      | Some r -> Format.asprintf "%a" D.pp_result r
      | None -> "⊥");

    (* R2 = extend(chop(shift(R1, x_j = −m))): both ops now invoked at t. *)
    let r2_cfg =
      chop_and_extend ~params
        (Runs.Config.shift r1_cfg ~x:[| 0; -m; 0 |])
        ~invalid:(1, 0) ~delta':(d - m) b ~step:(s.label ^ " step2")
    in
    let r2 = H.execute ~params r2_cfg in
    Report.line b "[%s] R2: %s" s.label (H.history_line r2);

    (* R3 = extend(chop(shift(R2, x_i = m))): op1 at t+m, op2 at t. *)
    let r3_cfg =
      chop_and_extend ~params
        (Runs.Config.shift r2_cfg ~x:[| m; 0; 0 |])
        ~invalid:(0, 1) ~delta':d b ~step:(s.label ^ " step3")
    in
    let r3 = H.execute ~params r3_cfg in
    Report.line b "[%s] R3: %s" s.label (H.history_line r3);
    List.iter (fun l -> Report.line b "    %s" l) (H.diagram r3);

    (* R‴3: p1 alone under R3's timing — the deterministic-object witness
       op4 = op2 of Step 4. *)
    let r3'' =
      H.execute ~params
        { r3_cfg with script = s.prefix @ [ Sim.Workload.at 1 s.op2 t ] }
    in
    Report.line b "[%s] R'''3 (op2 solo) returns %s" s.label
      (match H.result_of r3'' np with
      | Some r -> Format.asprintf "%a" D.pp_result r
      | None -> "⊥");

    (* All four *complete* configurations must be admissible runs. *)
    List.iter
      (fun (name, cfg) ->
        ignore
          (Report.expect b
             ~what:(Printf.sprintf "[%s] %s admissible" s.label name)
             (Runs.Config.is_admissible cfg)))
      [ ("R1", r1_cfg); ("R2", r2_cfg); ("R3", r3_cfg) ];
    let verdicts =
      [
        ("R1", H.is_linearizable r1);
        ("R'1", H.is_linearizable r1');
        ("R2", H.is_linearizable r2);
        ("R3", H.is_linearizable r3);
        ("R'''3", H.is_linearizable r3'');
      ]
    in
    List.iter
      (fun (name, ok) ->
        Report.line b "[%s] %s %s" s.label name
          (if ok then "linearizable" else "NOT linearizable"))
      verdicts;
    List.exists (fun (_, ok) -> not ok) verdicts
end

module Reg = Scenario (Spec.Register)
module Q = Scenario (Spec.Fifo_queue)
module S = Scenario (Spec.Lifo_stack)

let params_of timing =
  let p = Core.Params.make ~n:3 ~d:900 ~u:300 ~eps:300 ~x:0 () in
  match timing with
  | `Standard -> p
  | `Fast -> Core.Params.faster_oop p ~oop_latency:900 (* < d + m = 1200 *)

let run () =
  let b = Report.builder () in
  Report.line b "d=900 u=300 ε=300, m = min{ε,u,d/3} = 300; bound d+m = 1200";

  let reg_scenario : Reg.t =
    { label = "rmw"; prefix = []; op1 = Spec.Register.Rmw 1; op2 = Spec.Register.Rmw 2 }
  in
  let q_scenario : Q.t =
    {
      label = "dequeue";
      prefix = [ Sim.Workload.at 2 (Spec.Fifo_queue.Enqueue 9) 0 ];
      op1 = Spec.Fifo_queue.Dequeue;
      op2 = Spec.Fifo_queue.Dequeue;
    }
  in

  let fast = params_of `Fast and standard = params_of `Standard in
  let v1 = Reg.attack b ~params:fast reg_scenario in
  ignore
    (Report.expect b ~what:"fast rmw (|OOP| = 900 < d+m): adversary finds a violation" v1);
  let v2 = Reg.attack b ~params:standard reg_scenario in
  ignore
    (Report.expect b ~what:"standard rmw (|OOP| = d+ε = d+m): family fully linearizable"
       (not v2));
  let v3 = Q.attack b ~params:fast q_scenario in
  ignore
    (Report.expect b ~what:"fast dequeue: adversary finds a violation" v3);
  let v4 = Q.attack b ~params:standard q_scenario in
  ignore
    (Report.expect b ~what:"standard dequeue: family fully linearizable" (not v4));
  let s_scenario : S.t =
    {
      label = "pop";
      prefix = [ Sim.Workload.at 2 (Spec.Lifo_stack.Push 9) 0 ];
      op1 = Spec.Lifo_stack.Pop;
      op2 = Spec.Lifo_stack.Pop;
    }
  in
  let v5 = S.attack b ~params:fast s_scenario in
  ignore (Report.expect b ~what:"fast pop: adversary finds a violation" v5);
  let v6 = S.attack b ~params:standard s_scenario in
  ignore
    (Report.expect b ~what:"standard pop: family fully linearizable" (not v6));
  Report.finish b ~id:"thm_c1"
    ~title:"Theorem C.1 adversary (Figs. 6–9): |OOP| ≥ d + min{ε,u,d/3}"
