(** Theorem E.1 (Figures 15–17): for an immediately self-commuting,
    eventually non-self-commuting, *non-overwriting* pure mutator OP and a
    pure accessor AOP that can detect it (assumptions A, B, C),
    |OP| + |AOP| ≥ d + m with m = min{ε, u, d/3}.

    Instantiation: enqueue + peek on a queue, the paper's own example (the
    theorem does not apply to write + read because write overwrites).
    op1 = enqueue(1) at p0, op2 = enqueue(2) at p1, both at real time t;
    peeks at p0, p1 after both respond and at p2 another m later.

    The adversary (Fig. 17): whichever enqueue the implementation
    linearizes first — call its process p_w — gets its view shifted m
    later.  The w→other delay becomes d − 2m (invalid when 2m > u), so the
    run is chopped at t* = t + d − m and extended with delay d.  When
    |OP| + |AOP| < d + m, the other process's peek responds before the
    shifted enqueue's message can arrive, so it still answers as if p_w's
    enqueue were first — but in real time p_w's enqueue now starts strictly
    after the other one completed: no legal permutation remains.

    The same machinery runs on a stack with a contents-returning accessor
    and on the BST's insert + depth pair (Table IV).  Note: with a strictly
    top-only peek the stack does *not* satisfy assumption A (after [push v]
    and after [push v'; push v] the top is the same v), so for the stack
    instance we use [Lifo_stack_obs] whose accessor returns the whole
    contents; see EXPERIMENTS.md. *)

open Spec

module Scenario (D : Data_type.S) = struct
  module H = Harness.Make (D)

  type t = {
    label : string;
    prefix : D.op Sim.Workload.invocation list;
        (** realizes ρ, quiesced well before [t0] *)
    op1 : D.op;  (** pure mutator at p0 *)
    op2 : D.op;  (** pure mutator at p1 *)
    accessor : D.op;
    first_of : D.result -> int option;
        (** from the p2 accessor's value: which process's mutator was
            linearized first? *)
  }

  let d = 900
  let u = 300
  let eps = 300
  let m = min eps (min u (d / 3))
  let t0 = 1000

  (* Fig. 16(a): i→k and j→k are d; everything else d − m. *)
  let delays_r1 () =
    let dm = Array.make_matrix 3 3 (d - m) in
    dm.(0).(2) <- d;
    dm.(1).(2) <- d;
    dm

  let attack b ~params (s : t) =
    let np = List.length s.prefix in
    (* Phase 1: run the two mutators alone to observe t1, t2. *)
    let mutators =
      s.prefix @ [ Sim.Workload.at 0 s.op1 t0; Sim.Workload.at 1 s.op2 t0 ]
    in
    let cfg0 = Runs.Config.make ~n:3 ~d ~u ~eps ~delays:(delays_r1 ()) ~script:mutators () in
    let phase1 = H.execute ~check_lin:false ~params cfg0 in
    let resp i =
      match H.response_time phase1 (np + i) with
      | Some r -> r
      | None -> failwith "mutator did not respond"
    in
    let tmax = max (resp 0) (resp 1) in
    (* Full R1: accessors at p0, p1 right after tmax; at p2 another m
       later. *)
    let r1_cfg =
      {
        cfg0 with
        Runs.Config.script =
          mutators
          @ [
              Sim.Workload.at 0 s.accessor (tmax + 1);
              Sim.Workload.at 1 s.accessor (tmax + 1);
              Sim.Workload.at 2 s.accessor (tmax + m + 1);
            ];
      }
    in
    let r1 = H.execute ~params r1_cfg in
    Report.line b "[%s] R1: %s" s.label (H.history_line r1);
    ignore
      (Report.expect b
         ~what:(Printf.sprintf "[%s] R1 admissible and linearizable" s.label)
         (Runs.Config.is_admissible r1_cfg && H.is_linearizable r1));
    (* Which mutator did p2's accessor see first? *)
    match Option.bind (H.result_of r1 (np + 4)) s.first_of with
    | None ->
        Report.line b "[%s] p2's accessor did not identify an order" s.label;
        false
    | Some w ->
        let other = 1 - w in
        Report.line b "[%s] p%d's mutator linearized first ⇒ shift p%d by m" s.label w w;
        let x = Array.init 3 (fun i -> if i = w then m else 0) in
        let shifted = Runs.Config.shift r1_cfg ~x in
        (* The w→other delay is now d − 2m; chop and extend it to d. *)
        let r2_cfg =
          match Runs.Config.invalid_delays shifted with
          | [] -> shifted
          | [ pair ] when pair = (w, other) ->
              let probe = H.execute ~check_lin:false ~params shifted in
              (match
                 Runs.Chop.cut_points shifted ~trace:probe.outcome.trace
                   ~invalid:(w, other) ~delta:(d - m)
               with
              | Some cut ->
                  Report.line b "[%s] chop: %d→%d delay %d, t* = %d" s.label w other
                    shifted.delays.(w).(other) cut.t_star
              | None -> ());
              {
                shifted with
                delays = Runs.Chop.extended_delays shifted ~invalid:(w, other) ~delta':d;
              }
          | other_pairs ->
              Report.line b "[%s] unexpected invalid pairs (%d)" s.label
                (List.length other_pairs);
              shifted
        in
        ignore
          (Report.expect b
             ~what:(Printf.sprintf "[%s] R2 (extended) admissible" s.label)
             (Runs.Config.is_admissible r2_cfg));
        let r2 = H.execute ~params r2_cfg in
        Report.line b "[%s] R2: %s" s.label (H.history_line r2);
        not (H.is_linearizable r2)
end

module Q = Scenario (Spec.Fifo_queue)
module S = Scenario (Spec.Lifo_stack_obs)
module B = Scenario (Spec.Bst)

let queue_scenario : Q.t =
  {
    label = "enqueue+peek";
    prefix = [];
    op1 = Spec.Fifo_queue.Enqueue 1;
    op2 = Spec.Fifo_queue.Enqueue 2;
    accessor = Spec.Fifo_queue.Peek;
    first_of =
      (function
      | Spec.Fifo_queue.Value 1 -> Some 0
      | Spec.Fifo_queue.Value 2 -> Some 1
      | _ -> None);
  }

let stack_scenario : S.t =
  {
    label = "push+observe";
    prefix = [];
    op1 = Spec.Lifo_stack_obs.Push 1;
    op2 = Spec.Lifo_stack_obs.Push 2;
    accessor = Spec.Lifo_stack_obs.Observe;
    first_of =
      (function
      (* contents are top-first: the *first* pushed value is at the bottom *)
      | Spec.Lifo_stack_obs.Contents [ _; 1 ] -> Some 0
      | Spec.Lifo_stack_obs.Contents [ _; 2 ] -> Some 1
      | _ -> None);
  }

(* Table IV's insert + depth: with root 4 in place, whichever of 5 and 6 is
   inserted first becomes the other's parent, so the node-resolved depth of
   5 identifies the order (see Spec.Bst). *)
let bst_scenario : B.t =
  {
    label = "insert+depth";
    prefix = [ Sim.Workload.at 2 (Spec.Bst.Insert 4) 0 ];
    op1 = Spec.Bst.Insert 5;
    op2 = Spec.Bst.Insert 6;
    accessor = Spec.Bst.Depth 5;
    first_of =
      (function
      | Spec.Bst.Level 1 -> Some 0 (* 5 directly under the root: 5 first *)
      | Spec.Bst.Level 2 -> Some 1 (* 5 under 6: 6 first *)
      | _ -> None);
  }

let run () =
  let b = Report.builder () in
  Report.line b "d=900 u=300 ε=300, m = 300; bound |OP|+|AOP| ≥ d+m = 1200";
  let base = Core.Params.make ~n:3 ~d:900 ~u:300 ~eps:300 ~x:0 () in
  (* |OP| + |AOP| = 150 + 900 = 1050 < 1200. *)
  let fast =
    Core.Params.faster_accessor (Core.Params.faster_mutator base ~latency:150)
      ~latency:900
  in
  let v1 = Q.attack b ~params:fast queue_scenario in
  ignore
    (Report.expect b ~what:"fast enqueue+peek (sum 1050 < d+m): R2 non-linearizable" v1);
  let v2 = Q.attack b ~params:base queue_scenario in
  ignore
    (Report.expect b
       ~what:"standard enqueue+peek (sum d+2ε = 1500 ≥ d+m): R2 linearizable" (not v2));
  let v3 = S.attack b ~params:fast stack_scenario in
  ignore
    (Report.expect b ~what:"fast push+observe: R2 non-linearizable" v3);
  let v4 = S.attack b ~params:base stack_scenario in
  ignore (Report.expect b ~what:"standard push+observe: R2 linearizable" (not v4));
  let v5 = B.attack b ~params:fast bst_scenario in
  ignore
    (Report.expect b ~what:"fast bst insert+depth: R2 non-linearizable" v5);
  let v6 = B.attack b ~params:base bst_scenario in
  ignore (Report.expect b ~what:"standard bst insert+depth: R2 linearizable" (not v6));
  Report.finish b ~id:"thm_e1"
    ~title:"Theorem E.1 adversary (Figs. 15–17): |OP|+|AOP| ≥ d + min{ε,u,d/3}"
