(** Figure 1: operation time vs linearizability on a read/write register.

    The paper's opening example, executed for real:

    (a) a too-fast read responds before the second write's message can
        arrive, returns the first write's value and breaks linearizability;
    (b) stretching the *write* instead makes the second write overlap the
        read, so [write(5) ∘ read(5) ∘ write(7)] becomes a legal
        linearization — no violation;
    (c) stretching the *read* (Algorithm 1's actual d + ε − X wait) lets it
        learn about the second write and return it — no violation.

    Parameters: d = 900, u = 300, ε = 100, X = 0, two active processes. *)

module H = Harness.Make (Spec.Register)

let d = 900
let u = 300
let eps = 100
let params = Core.Params.make ~n:2 ~d ~u ~eps ~x:0 ()

let config script : Spec.Register.op Runs.Config.t =
  Runs.Config.make ~n:2 ~d ~u ~eps ~script ()

(* p0 writes 5 then 7; p1 reads after both writes completed.  With the
   standard timing writes respond at ε + X = 100. *)
let script ~write_gap ~read_at =
  [
    Sim.Workload.at 0 (Spec.Register.Write 5) 0;
    Sim.Workload.at 0 (Spec.Register.Write 7) write_gap;
    Sim.Workload.at 1 Spec.Register.Read read_at;
  ]

let run () =
  let b = Report.builder () in

  (* (a) read shortened to 100 ≪ d: invoked at 950, after write(7)'s
     response at 300, but write(7)'s message only lands at 1100. *)
  let fast_read = Core.Params.faster_accessor params ~latency:100 in
  let ea = H.execute ~params:fast_read (config (script ~write_gap:200 ~read_at:950)) in
  Report.line b "(a) history: %s" (H.history_line ea);
  List.iter (fun l -> Report.line b "    %s" l) (H.diagram ea);
  ignore
    (Report.expect b ~what:"(a) fast read returns the stale value 5"
       (H.result_of ea 2 = Some (Spec.Register.Value 5)));
  ignore
    (Report.expect b ~what:"(a) fast read ⇒ linearizability violated"
       (not (H.is_linearizable ea)));

  (* (b) same fast read, but writes stretched to overlap it. *)
  let slow_write = Core.Params.faster_mutator fast_read ~latency:1100 in
  let eb =
    H.execute ~params:slow_write (config (script ~write_gap:1200 ~read_at:1250))
  in
  Report.line b "(b) history: %s" (H.history_line eb);
  ignore
    (Report.expect b ~what:"(b) longer write overlaps the read ⇒ linearizable"
       (H.is_linearizable eb));

  (* (c) the standard read wait d + ε − X = 1000 sees write(7). *)
  let ec = H.execute ~params (config (script ~write_gap:200 ~read_at:950)) in
  Report.line b "(c) history: %s" (H.history_line ec);
  ignore
    (Report.expect b ~what:"(c) standard read returns 7"
       (H.result_of ec 2 = Some (Spec.Register.Value 7)));
  ignore
    (Report.expect b ~what:"(c) longer read ⇒ linearizable" (H.is_linearizable ec));
  Report.finish b ~id:"fig1" ~title:"Operation time and linearizability (register)"
