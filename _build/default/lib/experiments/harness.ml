(** Shared plumbing for the experiments: for a given data type, instantiate
    Algorithm 1, the simulator engine and the linearizability checker, and
    run {!Runs.Config} configurations (the representation every Chapter IV
    construction manipulates). *)

open Spec

module Make (D : Data_type.S) = struct
  module Alg = Core.Algorithm1.Make (D)
  module Engine = Sim.Engine.Make (Alg)
  module Lin = Linearize.Make (D)

  type execution = {
    outcome : Engine.outcome;
    verdict : Lin.verdict;
    config : D.op Runs.Config.t;
  }

  (** Execute a run configuration under the given protocol parameters
      (whose timing may be a deliberately-fast variant).  [view_ends]
      executes a chopped prefix; chopped runs are not linearizability-
      checked against completed ops only unless [check_lin] is set. *)
  let execute ?(check_lin = true) ?view_ends ~(params : Core.Params.t)
      (config : D.op Runs.Config.t) : execution =
    let outcome =
      Engine.run ~config:params ~n:config.n ~offsets:config.offsets
        ~delay:(Runs.Config.delay_policy config)
        ?view_ends config.script
    in
    let verdict =
      if check_lin then Lin.check_trace outcome.trace
      else Lin.Linearizable []
    in
    { outcome; verdict; config }

  (** Same, but with an arbitrary delay policy (e.g. a chop extension
      override). *)
  let execute_with_delay ~(params : Core.Params.t) ~delay
      (config : D.op Runs.Config.t) : execution =
    let outcome =
      Engine.run ~config:params ~n:config.n ~offsets:config.offsets ~delay
        config.script
    in
    { outcome; verdict = Lin.check_trace outcome.trace; config }

  let is_linearizable (e : execution) = Lin.is_linearizable e.verdict

  let latency_of (e : execution) index =
    match Sim.Trace.find_op e.outcome.trace ~index with
    | Some r -> Sim.Trace.latency r
    | None -> None

  let result_of (e : execution) index =
    Sim.Trace.result_of e.outcome.trace ~index

  let response_time (e : execution) index =
    Option.bind (Sim.Trace.find_op e.outcome.trace ~index) (fun r ->
        r.response_real)

  (** Worst-case completed latency among operations classified [kind]. *)
  let max_latency_of_kind (e : execution) kind =
    Sim.Trace.max_latency
      ~f:(fun r -> D.classify r.op = kind)
      e.outcome.trace

  let pp_history fmt (e : execution) =
    List.iter
      (fun r ->
        Format.fprintf fmt "%a; "
          (Sim.Trace.pp_op_record D.pp_op D.pp_result)
          r)
      e.outcome.trace.ops

  let history_line (e : execution) = Format.asprintf "%a" pp_history e

  (** ASCII space-time diagram of the run (the thesis' figure style). *)
  let diagram ?width (e : execution) =
    Sim.Diagram.render ?width ~pp_op:D.pp_op ~pp_result:D.pp_result
      e.outcome.trace
end
