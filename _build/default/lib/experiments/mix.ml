(** Workload mixes: what the X trade-off means for a real application.

    The thesis' Chapter V gives per-class worst cases; an operator choosing
    X cares about the *mean* latency of their workload mix.  We run
    read-heavy / balanced / write-heavy register workloads (randomized
    arrival times and adversarial random delays) under Algorithm 1 at
    X = 0 (fast writes), at X = d + ε − u (fast reads), and under the
    centralized 2d baseline, and report mean latency per mix.  The paper's
    "shape": X = 0 wins write-heavy mixes, X = max wins read-heavy mixes,
    both beat 2d everywhere; every run stays linearizable. *)

module Alg = Core.Algorithm1.Make (Spec.Register)
module A = Sim.Engine.Make (Alg)
module C = Sim.Engine.Make (Core.Centralized.Make (Spec.Register))
module Lin = Linearize.Make (Spec.Register)

let n = 4
let d = 1200
let u = 400
let eps = Core.Params.optimal_eps ~n ~u

let script_of_mix ~rng ~reads_percent =
  List.concat_map
    (fun pid ->
      Sim.Workload.seq pid
        (Prelude.Rng.int rng 2000)
        (List.init 4 (fun i ->
             if Prelude.Rng.int rng 100 < reads_percent then Spec.Register.Read
             else Spec.Register.Write ((10 * pid) + i))))
    (List.init n Fun.id)

let mean_latency (trace : (Spec.Register.op, Spec.Register.result, 'm) Sim.Trace.t) =
  let total, count =
    List.fold_left
      (fun (t, c) r ->
        match Sim.Trace.latency r with Some l -> (t + l, c + 1) | None -> (t, c))
      (0, 0) trace.ops
  in
  if count = 0 then 0 else total / count

let run_mix ~reads_percent =
  let rng = Prelude.Rng.make (reads_percent + 5) in
  let script = script_of_mix ~rng ~reads_percent in
  let offsets = Array.init n (fun i -> i * eps / (n - 1)) in
  let delay seed = Sim.Delay.random (Prelude.Rng.make seed) ~d ~u in
  let run_alg x =
    let params = Core.Params.make ~n ~d ~u ~eps ~x () in
    let out = A.run ~config:params ~n ~offsets ~delay:(delay 9) script in
    (mean_latency out.trace, Lin.(is_linearizable (check_trace out.trace)))
  in
  let fast_writes = run_alg 0 in
  let fast_reads = run_alg (d + eps - u) in
  let central =
    let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
    let out = C.run ~config:params ~n ~offsets ~delay:(delay 10) script in
    (mean_latency out.trace, Lin.(is_linearizable (check_trace out.trace)))
  in
  (fast_writes, fast_reads, central)

let run () =
  let b = Report.builder () in
  Report.line b "n=%d d=%d u=%d ε=%d; 16 ops per mix, random schedules" n d u eps;
  Report.line b "%12s %14s %14s %14s" "reads" "mean@X=0" "mean@X=max" "mean@2d";
  let ok = ref true in
  List.iter
    (fun reads_percent ->
      let (m0, l0), (mx, lx), (mc, lc) = run_mix ~reads_percent in
      Report.line b "%11d%% %14d %14d %14d" reads_percent m0 mx mc;
      ok := !ok && l0 && lx && lc && m0 < mc && mx < mc;
      (* the trade-off direction *)
      if reads_percent <= 25 then ok := !ok && m0 <= mx
      else if reads_percent >= 75 then ok := !ok && mx <= m0)
    [ 10; 25; 50; 75; 90 ];
  ignore
    (Report.expect b
       ~what:
         "all mixes linearizable; both X choices beat 2d; X=0 wins write-heavy, \
          X=max wins read-heavy"
       !ok);
  Report.finish b ~id:"mix" ~title:"Workload mixes: choosing X in practice"
