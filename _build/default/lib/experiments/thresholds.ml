(** Measuring the lower bounds.

    Each theorem experiment runs its adversary against one fast and one
    standard implementation.  Here we *scan* the implementation latency and
    record the smallest latency at which the adversary stops finding a
    violation — an empirical lower bound to put next to the theorem:

    - Theorem C.1 (rmw, d = 900, m = 300): predicted threshold d + m = 1200;
    - Theorem D.1 (write, k = 4, u = 400): predicted (1 − 1/k)·u = 300;
    - Theorem E.1 (enqueue + peek): predicted |OP| + |AOP| = d + m = 1200
      (up to the one-tick scheduling grain of the "invoked immediately
      after" script offsets).

    The theorems state that *no correct implementation* can be faster; the
    scans show our adversaries are sharp — they catch every latency below
    the bound and none at or above it. *)

let quiet () = Report.builder ()

(* smallest x in [lo, hi] (step 1 via linear scan over a coarse grid then a
   fine scan) for which [violates x] is false; assumes anti-monotone
   violation in this range *)
let threshold ~lo ~hi ~coarse violates =
  let rec fine x = if x > hi then hi + 1 else if violates x then fine (x + 1) else x in
  let rec scan x =
    if x > hi then hi + 1
    else if violates x then scan (x + coarse)
    else fine (max lo (x - coarse + 1))
  in
  scan lo

let c1_threshold () =
  let base = Core.Params.make ~n:3 ~d:900 ~u:300 ~eps:300 ~x:0 () in
  let scenario : Thm_c1.Reg.t =
    { label = "rmw"; prefix = []; op1 = Spec.Register.Rmw 1; op2 = Spec.Register.Rmw 2 }
  in
  threshold ~lo:950 ~hi:1350 ~coarse:50 (fun latency ->
      Thm_c1.Reg.attack (quiet ()) ~params:(Core.Params.faster_oop base ~oop_latency:latency)
        scenario)

let d1_threshold () =
  let k = 4 in
  let eps = Core.Params.optimal_eps ~n:(k + 1) ~u:400 in
  let base = Core.Params.make ~n:(k + 1) ~d:1000 ~u:400 ~eps ~x:0 () in
  let scenario : Thm_d1.Reg.t =
    {
      label = "write";
      mutator = (fun i -> Spec.Register.Write (i + 10));
      is_mutator = (function Spec.Register.Write _ -> true | _ -> false);
      probes = [ Spec.Register.Read ];
      k;
    }
  in
  threshold ~lo:150 ~hi:400 ~coarse:25 (fun latency ->
      Thm_d1.Reg.attack (quiet ()) ~params:(Core.Params.faster_mutator base ~latency)
        scenario)

(* The distinctive feature of Theorem D.1 is the growth of the bound with
   the number k of concurrent instances.  Sweep k with u = 600 (divisible
   by 2k for every k here) and locate each threshold. *)
let d1_k_sweep () =
  (* Thm_d1's Scenario is compiled with its own d/u; rebuild the attack
     with the module's constants: d = 1000, u = 400 only divides 2k for
     k ∈ {2, 4, 5}. *)
  List.map
    (fun k ->
      let u = 400 in
      let eps = Core.Params.optimal_eps ~n:(k + 1) ~u in
      let base = Core.Params.make ~n:(k + 1) ~d:1000 ~u ~eps ~x:0 () in
      let scenario : Thm_d1.Reg.t =
        {
          label = Printf.sprintf "write-k%d" k;
          mutator = (fun i -> Spec.Register.Write (i + 10));
          is_mutator = (function Spec.Register.Write _ -> true | _ -> false);
          probes = [ Spec.Register.Read ];
          k;
        }
      in
      let t =
        threshold ~lo:100 ~hi:450 ~coarse:25 (fun latency ->
            Thm_d1.Reg.attack (quiet ())
              ~params:(Core.Params.faster_mutator base ~latency)
              scenario)
      in
      (k, t, u - (u / k)))
    [ 2; 4; 5 ]

(* Theorem E.1 bounds the *sum*; a mutator faster than the m-shift is
   defeated regardless of the accessor (its timestamps stop reflecting real
   time), so we probe the sum along the correct-mutator family: keep
   |OP| = ε + X = 300 and scan the accessor wait.  The violation flips when
   the accessor stops missing the shifted mutator's message. *)
let e1_threshold () =
  let base = Core.Params.make ~n:3 ~d:900 ~u:300 ~eps:300 ~x:0 () in
  let mutator_latency = base.timing.mutator_wait in
  let accessor_threshold =
    threshold ~lo:700 ~hi:1000 ~coarse:50 (fun latency ->
        let params = Core.Params.faster_accessor base ~latency in
        Thm_e1.Q.attack (quiet ()) ~params Thm_e1.queue_scenario)
  in
  mutator_latency + accessor_threshold

let run () =
  let b = Report.builder () in
  let c1 = c1_threshold () in
  Report.line b "Thm C.1 (rmw): adversary defeated from |OOP| = %d; bound d+m = 1200" c1;
  ignore (Report.expect b ~what:"C.1 empirical threshold = d + m exactly" (c1 = 1200));
  let d1 = d1_threshold () in
  Report.line b "Thm D.1 (write, k=4): defeated from |MOP| = %d; bound (1−1/k)u = 300" d1;
  ignore (Report.expect b ~what:"D.1 empirical threshold = (1−1/k)u exactly" (d1 = 300));
  List.iter
    (fun (k, t, bound) ->
      Report.line b "Thm D.1 at k=%d: threshold %d, bound (1−1/k)u = %d" k t bound;
      ignore
        (Report.expect b
           ~what:(Printf.sprintf "D.1 k=%d threshold matches the k-dependent bound" k)
           (t = bound)))
    (d1_k_sweep ());
  let e1 = e1_threshold () in
  Report.line b "Thm E.1 (enqueue+peek): defeated from |OP|+|AOP| = %d; bound d+m = 1200" e1;
  ignore
    (Report.expect b
       ~what:"E.1 empirical threshold within the 2-tick scheduling grain of d + m"
       (abs (e1 - 1200) <= 2));
  Report.finish b ~id:"thresholds"
    ~title:"Empirical lower-bound thresholds (latency scans against the adversaries)"
