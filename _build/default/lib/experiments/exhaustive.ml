(** Exhaustive schedule sweep — bounded model checking of the adversary
    space.

    Randomized testing samples the adversary; here we *enumerate* it.  For
    n = 3 the adversary's choices in the proofs of Chapter IV are exactly
    (a) a pairwise-uniform delay matrix and (b) a clock-offset vector, so we
    sweep every matrix with entries in {d − u, d − u/2, d} (3^6 = 729) and
    every offset vector in {0, −ε/2, −ε}^2 (p0 pinned to 0; 9 combinations)
    against canonical register workloads — 6561 runs per workload.  Every
    single schedule must keep Algorithm 1 linearizable.

    The same sweep then runs against the too-fast OOP variant of the
    Theorem C.1 experiments, reporting in *how many* of the schedules the
    violation shows up: the lower-bound adversary is not a measure-zero
    corner case. *)

module H = Harness.Make (Spec.Register)

let n = 3
let d = 900
let u = 300
let eps = 300

let delay_choices = [ d - u; d - (u / 2); d ]
let offset_choices = [ 0; -(eps / 2); -eps ]

(* all delay matrices over the 6 ordered pairs *)
let matrices () =
  let pairs = [ (0, 1); (0, 2); (1, 0); (1, 2); (2, 0); (2, 1) ] in
  let rec go = function
    | [] -> [ [] ]
    | p :: rest ->
        let tails = go rest in
        List.concat_map (fun v -> List.map (fun t -> (p, v) :: t) tails) delay_choices
  in
  List.map
    (fun assignment ->
      let m = Array.make_matrix n n d in
      List.iter (fun ((i, j), v) -> m.(i).(j) <- v) assignment;
      m)
    (go pairs)

let offset_vectors () =
  List.concat_map
    (fun o1 -> List.map (fun o2 -> [| 0; o1; o2 |]) offset_choices)
    offset_choices

(* Two canonical workloads: concurrent RMWs with a probe, and a
   write/read/rmw mix. *)
let scripts =
  [
    ( "rmw-race",
      [
        Sim.Workload.at 0 (Spec.Register.Rmw 1) 1000;
        Sim.Workload.at 1 (Spec.Register.Rmw 2) 1150;
        Sim.Workload.at 2 Spec.Register.Read 5000;
      ] );
    ( "mixed",
      [
        Sim.Workload.at 0 (Spec.Register.Write 1) 1000;
        Sim.Workload.at 1 Spec.Register.Read 1100;
        Sim.Workload.at 2 (Spec.Register.Rmw 2) 1200;
        Sim.Workload.at 0 Spec.Register.Read 4000;
      ] );
  ]

let sweep ~params script =
  let total = ref 0 and violations = ref 0 in
  List.iter
    (fun delays ->
      List.iter
        (fun offsets ->
          let cfg = Runs.Config.make ~n ~d ~u ~eps ~offsets ~delays ~script () in
          incr total;
          let e = H.execute ~params cfg in
          if not (H.is_linearizable e) then incr violations)
        (offset_vectors ()))
    (matrices ());
  (!total, !violations)

let run () =
  let b = Report.builder () in
  Report.line b "n=%d d=%d u=%d ε=%d; delays ∈ {%s}⁶, offsets ∈ {%s}²" n d u eps
    (String.concat "," (List.map string_of_int delay_choices))
    (String.concat "," (List.map string_of_int offset_choices));
  let standard = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  let fast = Core.Params.faster_oop standard ~oop_latency:900 in
  List.iter
    (fun (name, script) ->
      let total, v_std = sweep ~params:standard script in
      Report.line b "%-10s standard: %d/%d schedules linearizable" name (total - v_std)
        total;
      ignore
        (Report.expect b
           ~what:(Printf.sprintf "%s: Algorithm 1 survives all %d schedules" name total)
           (v_std = 0));
      let total, v_fast = sweep ~params:fast script in
      Report.line b "%-10s fast OOP (<d+m): violations in %d/%d schedules" name v_fast
        total;
      if name = "rmw-race" then
        ignore
          (Report.expect b
             ~what:"rmw-race: the fast variant is caught by a positive fraction of schedules"
             (v_fast > 0)))
    scripts;
  Report.finish b ~id:"sweep"
    ~title:"Exhaustive adversary sweep (6561 schedules per workload)"
