(** All reproduced tables, figures and extension experiments, addressable
    by id.  The CLI and the bench harness iterate this list. *)

type entry = { id : string; title : string; run : unit -> Report.t }

val register : id:string -> title:string -> (unit -> Report.t) -> unit
val all : unit -> entry list
val find : string -> entry option
