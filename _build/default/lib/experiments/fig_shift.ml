(** Figure 3: the standard time shift, executed.

    The classic u/2 lower-bound argument for writes: take a run R1 in which
    p0's write(5) completes before p1's write(7) is invoked (so a later read
    must return 7); shift p0's entire view 2·|write| + 2 later.  With
    symmetric original delays d − u/2, the shifted delays stay admissible as
    long as the shift is at most u/2 — formula (4.1).  Since no process can
    tell the difference, the read still returns 7 in the shifted run, whose
    real-time order now demands 5: a violation.  A write faster than u/2 is
    therefore incorrect, and the experiment shows both halves:

    - a fast write (latency 50 < u/2 = 200) is caught: the shifted run is
      admissible and non-linearizable;
    - the standard write (ε + X = 200 ≥ u/2 at optimal ε) cannot be framed:
      the required shift exceeds u/2 and the shifted run is inadmissible. *)

module H = Harness.Make (Spec.Register)

let d = 1000
let u = 400
let n = 2
let eps = Core.Params.optimal_eps ~n ~u (* 200 = u/2 *)
let t0 = 1000

let base_config ~write_latency : Spec.Register.op Runs.Config.t =
  Runs.Config.make ~n ~d ~u ~eps
    ~delays:(Array.make_matrix n n (d - (u / 2)))
    ~script:
      [
        Sim.Workload.at 0 (Spec.Register.Write 5) t0;
        (* invoked as soon as write(5) responds *)
        Sim.Workload.at 1 (Spec.Register.Write 7) (t0 + write_latency);
        (* probe long after everything settles *)
        Sim.Workload.at 1 Spec.Register.Read 10_000;
      ]
    ()

let attempt b ~label ~params ~write_latency =
  let cfg = base_config ~write_latency in
  let r1 = H.execute ~params cfg in
  Report.line b "%s R1: %s" label (H.history_line r1);
  let ok1 =
    Report.expect b
      ~what:(label ^ " R1 linearizable (read sees the later write 7)")
      (H.is_linearizable r1 && H.result_of r1 2 = Some (Spec.Register.Value 7))
  in
  (* Shift p0's view so write(5) is now invoked strictly after write(7)
     completes. *)
  let shift_amount = (2 * write_latency) + 2 in
  let shifted = Runs.Config.shift cfg ~x:[| shift_amount; 0 |] in
  if Runs.Config.is_admissible shifted then begin
    let r2 = H.execute ~params shifted in
    Report.line b "%s R2 = shift(R1,[%d;0]): %s" label shift_amount
      (H.history_line r2);
    let violated =
      Report.expect b
        ~what:
          (label
         ^ " shifted run admissible and non-linearizable (read still 7, order flipped)")
        (not (H.is_linearizable r2))
    in
    ok1 && violated
  end
  else begin
    Report.line b
      "%s shift by %d would need delays outside [%d,%d] or skew > ε — the \
       adversary cannot build R2"
      label shift_amount (d - u) d;
    ok1
  end

let run () =
  let b = Report.builder () in
  let fast = Core.Params.faster_mutator (Core.Params.make ~n ~d ~u ~eps ~x:0 ()) ~latency:50 in
  ignore (attempt b ~label:"[fast |write|=50]" ~params:fast ~write_latency:50);
  let standard = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  let survived = attempt b ~label:"[standard |write|=ε+X=200]" ~params:standard ~write_latency:200 in
  ignore
    (Report.expect b ~what:"standard write (= u/2 at optimal ε) survives the shift adversary" survived);
  Report.finish b ~id:"fig3" ~title:"Standard time shift (write lower bound u/2)"
