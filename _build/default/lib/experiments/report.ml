(** Experiment reports: every reproduced table/figure produces one, with the
    series/rows the paper reports plus a pass/fail verdict ("did the run
    family behave as the paper predicts?").  The CLI prints them; the bench
    harness runs them under Bechamel and appends them to its output. *)

type t = {
  id : string;  (** e.g. ["fig1"], ["thm_c1"], ["table2"] *)
  title : string;
  lines : string list;  (** human-readable rows/series *)
  ok : bool;  (** all of the paper's predicted outcomes held *)
}

let make ~id ~title ~ok lines = { id; title; lines; ok }

let pp fmt t =
  Format.fprintf fmt "== %s: %s [%s]@." t.id t.title
    (if t.ok then "OK" else "MISMATCH");
  List.iter (fun l -> Format.fprintf fmt "   %s@." l) t.lines

let to_string t = Format.asprintf "%a" pp t

(* Tiny line-building DSL used by the experiment modules. *)
type builder = { mutable rev_lines : string list; mutable all_ok : bool }

let builder () = { rev_lines = []; all_ok = true }
let line b fmt = Format.kasprintf (fun s -> b.rev_lines <- s :: b.rev_lines) fmt

(** Record a named expectation: appends a ✓/✗ line and folds into [ok]. *)
let expect b ~what cond =
  b.all_ok <- b.all_ok && cond;
  line b "%s %s" (if cond then "✓" else "✗") what;
  cond

let finish b ~id ~title =
  { id; title; lines = List.rev b.rev_lines; ok = b.all_ok }
