(** The X trade-off (Chapter V.A.2 / V.D): sweep X over [0, d + ε − u] and
    measure |MOP| and |AOP| on a register under Algorithm 1.  The series
    must trace |MOP| = ε + X, |AOP| = d + ε − X, with the sum pinned at
    d + 2ε (Theorem D.1 of Chapter V) — faster mutators buy slower
    accessors one-for-one. *)

module H = Harness.Make (Spec.Register)

let n = 4
let d = 1000
let u = 400
let eps = Core.Params.optimal_eps ~n ~u (* 300 *)

let measure ~x =
  let params = Core.Params.make ~n ~d ~u ~eps ~x () in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Write 1) 0;
      Sim.Workload.at 1 Spec.Register.Read 5_000;
    ]
  in
  let e =
    H.execute ~params
      (Runs.Config.make ~n ~d ~u ~eps
         ~delays:(Array.make_matrix n n d)
         ~script ())
  in
  match (H.latency_of e 0, H.latency_of e 1) with
  | Some w, Some r -> (w, r, H.is_linearizable e)
  | _ -> failwith "tradeoff: operations did not complete"

let run () =
  let b = Report.builder () in
  Report.line b "n=%d d=%d u=%d ε=%d; X ∈ [0, d+ε−u = %d]" n d u eps (d + eps - u);
  Report.line b "%6s %12s %12s %8s" "X" "|write|" "|read|" "sum";
  let xmax = d + eps - u in
  let step = xmax / 9 in
  let ok = ref true in
  List.iter
    (fun x ->
      let w, r, lin = measure ~x in
      Report.line b "%6d %12d %12d %8d" x w r (w + r);
      ok :=
        !ok && lin && w = eps + x && r = d + eps - x && w + r = d + (2 * eps))
    (List.init 10 (fun i -> if i = 9 then xmax else i * step));
  ignore
    (Report.expect b
       ~what:"|write| = ε+X, |read| = d+ε−X, sum = d+2ε at every X; all runs linearizable"
       !ok);
  Report.finish b ~id:"tradeoff" ~title:"Mutator/accessor trade-off (X sweep)"
