(** Scaling with the number of processes.

    The bounds of Chapter V depend on n only through the optimal clock skew
    ε = (1 − 1/n)·u, so the series here traces how each operation class
    scales as the system grows — pure mutators degrade gently toward u,
    accessors/OOPs stay pinned near d + ε — while the per-operation message
    cost of Algorithm 1 grows linearly (a broadcast, n − 1 messages) against
    the centralized baseline's constant 2.  Latency identities are asserted
    exactly at every n. *)

module Alg = Core.Algorithm1.Make (Spec.Register)
module A = Sim.Engine.Make (Alg)
module C = Sim.Engine.Make (Core.Centralized.Make (Spec.Register))
module Lin = Linearize.Make (Spec.Register)

let d = 1200
let u = 400

let script =
  let open Spec.Register in
  List.concat
    [
      Sim.Workload.seq 0 0 [ Write 1; Read; Rmw 2 ];
      Sim.Workload.seq 1 200 [ Read; Write 3; Rmw 4 ];
    ]

let measure_at n =
  let eps = Core.Params.optimal_eps ~n ~u in
  let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  let offsets = Array.make n 0 in
  let a = A.run ~config:params ~n ~offsets ~delay:(Sim.Delay.constant d) script in
  let c = C.run ~config:params ~n ~offsets ~delay:(Sim.Delay.constant d) script in
  (* accessors are free; broadcasting ops (mutators + OOPs) pay n − 1 *)
  let broadcasting =
    List.length
      (List.filter
         (fun (r : _ Sim.Trace.op_record) ->
           Spec.Register.classify r.op <> Spec.Data_type.Pure_accessor)
         a.trace.ops)
  in
  let kind k = Sim.Trace.max_latency ~f:(fun r -> Spec.Register.classify r.op = k) a.trace in
  ( eps,
    kind Spec.Data_type.Pure_mutator,
    kind Spec.Data_type.Pure_accessor,
    kind Spec.Data_type.Other,
    List.length a.trace.messages / broadcasting,
    List.length c.trace.messages / broadcasting,
    Lin.(is_linearizable (check_trace a.trace)) )

let run () =
  let b = Report.builder () in
  Report.line b "d=%d u=%d X=0, ε = (1−1/n)u; 6-op register workload" d u;
  Report.line b "%4s %6s %8s %8s %8s %10s %12s" "n" "ε" "|write|" "|read|" "|rmw|"
    "msgs/bop" "msgs/bop(2d)";
  let ok = ref true in
  List.iter
    (fun n ->
      let eps, w, r, o, m_alg, m_cen, lin = measure_at n in
      Report.line b "%4d %6d %8d %8d %8d %10d %12d" n eps w r o m_alg m_cen;
      ok := !ok && lin && w = eps && r = d + eps && o <= d + eps)
    [ 2; 4; 8; 12; 16 ];
  ignore
    (Report.expect b
       ~what:"at every n: linearizable, |write| = (1−1/n)u, |read| = d+ε, |rmw| ≤ d+ε"
       !ok);
  Report.finish b ~id:"scaling" ~title:"Scaling in n: latency pinned, messages linear"
