(** All reproduced tables and figures, addressable by id.  The CLI and the
    bench harness iterate this list. *)

type entry = {
  id : string;
  title : string;
  run : unit -> Report.t;
}

let entries : entry list ref = ref []

let register ~id ~title run = entries := { id; title; run } :: !entries

let () =
  register ~id:"fig1" ~title:"Fig. 1: operation time vs linearizability"
    Fig_folklore.run;
  register ~id:"fig3" ~title:"Fig. 3: standard time shift (u/2 write bound)"
    Fig_shift.run;
  register ~id:"fig4-5" ~title:"Figs. 4-5: modified time shift (shift/chop/extend)"
    Fig_modified_shift.run;
  register ~id:"thm_c1" ~title:"Thm C.1 / Figs. 6-9: OOP lower bound d+m"
    Thm_c1.run;
  register ~id:"thm_d1" ~title:"Thm D.1 / Figs. 10-14: mutator lower bound (1-1/k)u"
    Thm_d1.run;
  register ~id:"thm_e1" ~title:"Thm E.1 / Figs. 15-17: pair lower bound d+m"
    Thm_e1.run;
  register ~id:"tables" ~title:"Tables I-IV: measured vs paper bounds" Tables.run;
  register ~id:"tradeoff" ~title:"Ch. V.D: mutator/accessor X trade-off" Tradeoff.run;
  register ~id:"baselines" ~title:"Ch. I: Algorithm 1 vs 2d centralized vs TOB"
    Baselines.run;
  register ~id:"clocksync" ~title:"Ch. V premise: optimal-skew clock sync"
    Sync_experiment.run;
  register ~id:"ablation" ~title:"Ablations: each wait of Algorithm 1 is load-bearing"
    Ablation.run;
  register ~id:"drift" ~title:"Future work: bounded clock drift" Drift.run;
  register ~id:"lossy" ~title:"Future work: message loss + retransmission layer"
    Lossy.run;
  register ~id:"scaling" ~title:"Scaling in n: latencies and message cost" Scaling.run;
  register ~id:"sweep" ~title:"Exhaustive adversary sweep (bounded model checking)"
    Exhaustive.run;
  register ~id:"sc" ~title:"Ch. I separation: linearizability vs sequential consistency"
    Sc_separation.run;
  register ~id:"mix" ~title:"Workload mixes: choosing X in practice" Mix.run;
  register ~id:"thresholds"
    ~title:"Empirical lower-bound thresholds (latency scans)" Thresholds.run

let all () = List.rev !entries
let find id = List.find_opt (fun e -> String.equal e.id id) (all ())
