lib/experiments/tradeoff.ml: Array Core Harness List Report Runs Sim Spec
