lib/experiments/harness.ml: Core Data_type Format Linearize List Option Runs Sim Spec
