lib/experiments/sc_separation.ml: Core Harness Linearize Report Runs Sim Spec
