lib/experiments/fig_folklore.ml: Core Harness List Report Runs Sim Spec
