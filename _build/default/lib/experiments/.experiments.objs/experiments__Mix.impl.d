lib/experiments/mix.ml: Array Core Fun Linearize List Prelude Report Sim Spec
