lib/experiments/fig_modified_shift.ml: Array Core Harness List Report Runs Sim Spec
