lib/experiments/exhaustive.ml: Array Core Harness List Printf Report Runs Sim Spec String
