lib/experiments/ablation.ml: Array Core Harness Report Runs Sim Spec
