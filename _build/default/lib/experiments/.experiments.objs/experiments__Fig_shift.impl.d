lib/experiments/fig_shift.ml: Array Core Harness Report Runs Sim Spec
