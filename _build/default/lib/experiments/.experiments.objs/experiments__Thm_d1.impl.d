lib/experiments/thm_d1.ml: Array Core Data_type Harness List Printf Report Runs Sim Spec String
