lib/experiments/report.ml: Format List
