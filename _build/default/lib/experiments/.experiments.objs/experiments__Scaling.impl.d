lib/experiments/scaling.ml: Array Core Linearize List Report Sim Spec
