lib/experiments/lossy.ml: Core Format Linearize List Prelude Printf Report Sim Spec
