lib/experiments/tables.ml: Array Bounds Core Data_type Fifo_queue Harness Hashtbl Lifo_stack List Option Prelude Printf Register Report Rooted_tree Sim Spec String
