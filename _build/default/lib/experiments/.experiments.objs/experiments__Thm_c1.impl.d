lib/experiments/thm_c1.ml: Array Core Data_type Format Harness List Printf Report Runs Sim Spec
