lib/experiments/thm_e1.ml: Array Core Data_type Harness List Option Printf Report Runs Sim Spec
