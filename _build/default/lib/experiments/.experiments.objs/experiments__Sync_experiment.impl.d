lib/experiments/sync_experiment.ml: Array Clocksync List Prelude Printf Report Sim
