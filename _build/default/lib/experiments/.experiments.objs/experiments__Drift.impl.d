lib/experiments/drift.ml: Core Linearize List Printf Report Sim Spec
