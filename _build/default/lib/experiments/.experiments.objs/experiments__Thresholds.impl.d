lib/experiments/thresholds.ml: Core List Printf Report Spec Thm_c1 Thm_d1 Thm_e1
