lib/experiments/baselines.ml: Array Core Data_type Linearize List Printf Register Report Sim Spec
