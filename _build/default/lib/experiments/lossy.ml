(** Message loss — the second future-work item of the thesis' conclusion
    ("we may also consider different types of failures in message passing
    systems").

    Three arms:

    1. Algorithm 1 straight over a link that drops one message: the write's
       broadcast never reaches p1, whose later read returns the initial
       value — a linearizability violation (the model's reliable-delivery
       assumption is load-bearing).

    2. The same network under {!Sim.Reliable} with retransmit period r and
       loss budget L = 2, with Algorithm 1 configured for the *effective*
       bounds d_eff = d + L·r, u_eff = u + L·r: every operation completes,
       the history is linearizable, and the latency identities hold at the
       effective parameters (reads in d_eff + ε − X).

    3. Randomized bounded loss (30%, ≤ 2 consecutive per link) over mixed
       workloads: always linearizable, nothing lost or stuck. *)

module Plain = Core.Algorithm1.Make (Spec.Register)
module Plain_engine = Sim.Engine.Make (Plain)
module Wrapped = Sim.Reliable.Make (Plain)
module Wrapped_engine = Sim.Engine.Make (Wrapped)
module Lin = Linearize.Make (Spec.Register)

let n = 3
let d = 1000
let u = 400
let eps = 200
let retransmit = 300
let loss_budget = 2

let d_eff = d + (loss_budget * retransmit)
let u_eff = u + (loss_budget * retransmit)

let script =
  [
    Sim.Workload.at 0 (Spec.Register.Write 5) 0;
    Sim.Workload.at 1 Spec.Register.Read 5_000;
    Sim.Workload.at 2 (Spec.Register.Rmw 9) 5_200;
  ]

let offsets = [| 0; eps; 0 |]

let run () =
  let b = Report.builder () in

  (* Arm 1: unprotected Algorithm 1, one lost message. *)
  let lossy_delay () =
    Sim.Delay.drop_first (Sim.Delay.constant (d - u)) ~from:0 ~to_:1 ~count:1
  in
  let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  let out1 = Plain_engine.run ~config:params ~n ~offsets ~delay:(lossy_delay ()) script in
  let read1 = Sim.Trace.result_of out1.trace ~index:1 in
  Report.line b "arm 1 (no protection): read at p1 returns %s"
    (match read1 with
    | Some r -> Format.asprintf "%a" Spec.Register.pp_result r
    | None -> "⊥");
  ignore
    (Report.expect b ~what:"arm 1: one lost message breaks linearizability"
       (not Lin.(is_linearizable (check_trace out1.trace))));

  (* Arm 2: Reliable wrapper, adversary drops the first 2 frames on 0→1,
     protocol configured for the effective bounds. *)
  let eff_params = Core.Params.make ~n ~d:d_eff ~u:u_eff ~eps ~x:0 () in
  let cfg : Wrapped.config =
    { inner = eff_params; retransmit_every = retransmit; max_retries = 8 }
  in
  let delay2 =
    Sim.Delay.drop_first (Sim.Delay.constant (d - u)) ~from:0 ~to_:1 ~count:loss_budget
  in
  let out2 = Wrapped_engine.run ~config:cfg ~n ~offsets ~delay:delay2 script in
  let all_done = Sim.Trace.pending out2.trace = [] in
  Report.line b "arm 2 (reliable, d_eff=%d u_eff=%d): read at p1 returns %s" d_eff u_eff
    (match Sim.Trace.result_of out2.trace ~index:1 with
    | Some r -> Format.asprintf "%a" Spec.Register.pp_result r
    | None -> "⊥");
  ignore (Report.expect b ~what:"arm 2: every operation completes" all_done);
  ignore
    (Report.expect b ~what:"arm 2: linearizable despite 2 consecutive losses"
       Lin.(is_linearizable (check_trace out2.trace)));
  ignore
    (Report.expect b
       ~what:
         (Printf.sprintf "arm 2: read latency = d_eff + ε − X = %d" (d_eff + eps))
       (Sim.Trace.max_latency
          ~f:(fun r -> r.op = Spec.Register.Read)
          out2.trace
       = d_eff + eps));

  (* Arm 3: randomized bounded loss over a mixed workload. *)
  let ok = ref true in
  for seed = 1 to 5 do
    let rng = Prelude.Rng.make seed in
    let delay =
      Sim.Delay.lossy_budget
        (Sim.Delay.random (Prelude.Rng.make (seed + 50)) ~d ~u)
        ~rng ~percent:30 ~budget:loss_budget
    in
    let script =
      List.concat_map
        (fun pid ->
          Sim.Workload.seq pid (pid * 300)
            [ Spec.Register.Write ((10 * pid) + seed); Spec.Register.Read; Spec.Register.Rmw pid ])
        [ 0; 1; 2 ]
    in
    let out = Wrapped_engine.run ~config:cfg ~n ~offsets ~delay script in
    ok :=
      !ok
      && Sim.Trace.pending out.trace = []
      && Lin.(is_linearizable (check_trace out.trace))
  done;
  ignore
    (Report.expect b
       ~what:"arm 3: 5 random bounded-loss schedules all complete and linearize" !ok);
  Report.finish b ~id:"lossy"
    ~title:"Future work: message loss, and recovery via a retransmission layer"
