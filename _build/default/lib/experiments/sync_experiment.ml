(** Clock-synchronization substrate (the "optimal ε" premise of Chapter V,
    thesis reference [6]): one round of Lundelius–Lynch synchronization
    brings arbitrarily skewed clocks to within (1 − 1/n)·u of each other,
    and an adversary choosing extreme delays can force exactly that
    residual skew for n = 2.

    Integer arithmetic note: corrections are averaged with truncating
    division, so measured skews may exceed the real-valued bound by at most
    1 tick per estimate; the assertions allow [n] ticks of rounding slack
    and the exact-tightness case is chosen divisibility-safe. *)

let d = 1200
let u = 400

let run () =
  let b = Report.builder () in
  let rng = Prelude.Rng.make 99 in
  List.iter
    (fun n ->
      let bound = Clocksync.Lundelius_lynch.optimal_skew ~n ~u in
      let worst = ref 0 in
      (* random initial skews and several adversarial delay policies *)
      for trial = 0 to 9 do
        let offsets = Array.init n (fun _ -> Prelude.Rng.int_in rng ~lo:(-5000) ~hi:5000) in
        let policies =
          Sim.Delay.random (Prelude.Rng.make (trial + 7)) ~d ~u
          :: List.init n (fun v -> Clocksync.Lundelius_lynch.adversarial_delay ~d ~u ~victim:v)
        in
        List.iter
          (fun delay ->
            let s = Clocksync.Lundelius_lynch.achieved_skew ~n ~d ~u ~offsets ~delay in
            worst := max !worst s)
          policies
      done;
      Report.line b "n=%d: worst synchronized skew %d, optimal bound (1−1/n)u = %d"
        n !worst bound;
      ignore
        (Report.expect b
           ~what:(Printf.sprintf "n=%d: skew ≤ (1−1/n)u (+%d rounding)" n n)
           (!worst <= bound + n)))
    [ 2; 4; 5; 8 ];
  (* Exact tightness at n = 2: the adversary forces skew u/2 on initially
     perfect clocks. *)
  let s =
    Clocksync.Lundelius_lynch.achieved_skew ~n:2 ~d ~u ~offsets:[| 0; 0 |]
      ~delay:(Clocksync.Lundelius_lynch.adversarial_delay ~d ~u ~victim:0)
  in
  Report.line b "n=2 adversary on perfect clocks: skew %d (bound %d)" s (u / 2);
  ignore (Report.expect b ~what:"n=2: adversary achieves exactly u/2" (s = u / 2));
  Report.finish b ~id:"clocksync"
    ~title:"Lundelius–Lynch synchronization: skew ≤ (1−1/n)u, tight"
