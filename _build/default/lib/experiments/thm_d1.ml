(** Theorem D.1 (Figures 10–14): eventually non-self-last-permuting
    operations cost at least (1 − 1/k)·u.

    The adversary: k processes invoke k distinct instances of the mutator at
    the same real time t in run R1, whose delay matrix is the proof's
    d − ((i−j) mod k)·u/k ring (Fig. 10).  A probe after quiescence reveals
    which instance op_z the implementation linearized last.  R2 = shift(R1,
    x) with x_i = [−(k−1)/(2k) + ((z−i) mod k)/k]·u (Fig. 13): all delays
    become d or d − u — admissible — and the clock skew becomes exactly
    (1 − 1/k)·u ≤ ε.  No process can distinguish R2 from R1, so the final
    state is unchanged; but in R2 op_z completes before op_{(z+1) mod k} is
    invoked whenever the mutator responds faster than (1 − 1/k)·u, so no
    legal permutation may end with op_z — the probe exposes the violation.

    Instantiations: write on a register (eventually non-self-*last*-
    permuting: the probe read reveals only the last write) and push on a
    stack (non-self-*any*-permuting: k pops reveal the entire order). *)

open Spec

module Scenario (D : Data_type.S) = struct
  module H = Harness.Make (D)

  type t = {
    label : string;
    mutator : int -> D.op;  (** the i-th of the k distinct instances *)
    is_mutator : D.op -> bool;
    probes : D.op list;  (** run after quiescence to observe the state *)
    k : int;
  }

  let d = 1000
  let u = 400
  let t0 = 1000

  let delays_r1 ~n ~k =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i < k && j < k then d - ((i - j + k) mod k * u / k)
            else d - (u / 2)))

  let shift_vector ~n ~k ~z =
    Array.init n (fun i ->
        if i < k then (-((k - 1) * u / (2 * k))) + ((z - i + k) mod k * u / k)
        else 0)

  (* Which mutator does the implementation linearize last?  Read it off the
     checker's witness permutation. *)
  let last_mutator (s : t) (e : H.execution) =
    match e.verdict with
    | H.Lin.Not_linearizable _ -> None
    | H.Lin.Linearizable witness ->
        List.fold_left
          (fun acc (entry : H.Lin.entry) ->
            if s.is_mutator entry.op then Some entry.pid else acc)
          None witness

  (* Returns true when the adversary exposed a violation. *)
  let attack b ~params (s : t) =
    let k = s.k in
    let n = k + 1 in
    let eps = Core.Params.optimal_eps ~n ~u in
    let script =
      List.init k (fun i -> Sim.Workload.at i (s.mutator i) t0)
      @ Sim.Workload.seq k 3000 s.probes
    in
    let r1_cfg =
      Runs.Config.make ~n ~d ~u ~eps ~delays:(delays_r1 ~n ~k) ~script ()
    in
    let r1 = H.execute ~params r1_cfg in
    Report.line b "[%s] R1: %s" s.label (H.history_line r1);
    ignore
      (Report.expect b
         ~what:(Printf.sprintf "[%s] R1 admissible and linearizable" s.label)
         (Runs.Config.is_admissible r1_cfg && H.is_linearizable r1));
    match last_mutator s r1 with
    | None -> false
    | Some z ->
        Report.line b "[%s] implementation linearizes op_%d last (z = %d)" s.label z z;
        let x = shift_vector ~n ~k ~z in
        let r2_cfg = Runs.Config.shift r1_cfg ~x in
        Report.line b "[%s] shift x = [%s]; skew after shift = %d = (1-1/k)u = %d"
          s.label
          (String.concat ";" (Array.to_list (Array.map string_of_int x)))
          (Runs.Config.skew r2_cfg)
          (u - (u / k));
        ignore
          (Report.expect b
             ~what:(Printf.sprintf "[%s] R2 admissible (all delays d or d−u, skew ≤ ε)" s.label)
             (Runs.Config.is_admissible r2_cfg));
        let r2 = H.execute ~params r2_cfg in
        Report.line b "[%s] R2: %s" s.label (H.history_line r2);
        not (H.is_linearizable r2)
end

module Reg = Scenario (Spec.Register)
module Stack = Scenario (Spec.Lifo_stack)

let run () =
  let b = Report.builder () in
  let k = 4 in
  Report.line b "d=1000 u=400 k=%d n=%d ε=(1−1/n)u=%d; bound (1−1/k)u = %d" k (k + 1)
    (Core.Params.optimal_eps ~n:(k + 1) ~u:400)
    (400 - (400 / k));
  let reg : Reg.t =
    {
      label = "write";
      mutator = (fun i -> Spec.Register.Write (i + 10));
      is_mutator = (function Spec.Register.Write _ -> true | _ -> false);
      probes = [ Spec.Register.Read ];
      k;
    }
  in
  let stack : Stack.t =
    {
      label = "push";
      mutator = (fun i -> Spec.Lifo_stack.Push (i + 10));
      is_mutator = (function Spec.Lifo_stack.Push _ -> true | _ -> false);
      probes = List.init k (fun _ -> Spec.Lifo_stack.Pop);
      k;
    }
  in
  let eps = Core.Params.optimal_eps ~n:(k + 1) ~u:400 in
  let base = Core.Params.make ~n:(k + 1) ~d:1000 ~u:400 ~eps ~x:0 () in
  let fast = Core.Params.faster_mutator base ~latency:200 (* < 300 = (1−1/k)u *) in

  let v1 = Reg.attack b ~params:fast reg in
  ignore (Report.expect b ~what:"fast write (200 < (1−1/k)u): R2 non-linearizable" v1);
  let v2 = Reg.attack b ~params:base reg in
  ignore
    (Report.expect b
       ~what:"standard write (ε + X = 320 ≥ (1−1/k)u): R2 linearizable" (not v2));
  let v3 = Stack.attack b ~params:fast stack in
  ignore (Report.expect b ~what:"fast push: R2 non-linearizable" v3);
  let v4 = Stack.attack b ~params:base stack in
  ignore (Report.expect b ~what:"standard push: R2 linearizable" (not v4));
  Report.finish b ~id:"thm_d1"
    ~title:"Theorem D.1 adversary (Figs. 10–14): |MOP| ≥ (1−1/k)u"
