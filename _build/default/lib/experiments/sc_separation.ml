(** Linearizability vs sequential consistency — the separation that frames
    the thesis (Chapter I.B: Lipton–Sandberg [5] showed fundamental limits
    for *sequential consistency*; Attiya–Welch [1] separated it from
    linearizability in exactly this time-complexity sense).

    We re-run Fig. 1(a)'s too-fast read (accessor wait 100 ≪ d): the trace
    *violates linearizability* — the read returns the overwritten 5 — yet it
    *satisfies sequential consistency*: the permutation
    write(5) ∘ read(5) ∘ write(7) respects both processes' program orders.
    That is the separation in executable form: under SC, reads can respond
    without waiting for the network, so the d + ε − X cost of Algorithm 1's
    reads is the price of real-time order specifically.

    A third check shows the SC checker still has teeth: a single process
    reading 7 and then 5 (values moving backwards against its own program
    order) is rejected even by SC. *)

module H = Harness.Make (Spec.Register)
module Lin = Linearize.Make (Spec.Register)

let d = 900
let u = 300
let eps = 100
let params = Core.Params.make ~n:2 ~d ~u ~eps ~x:0 ()

let run () =
  let b = Report.builder () in
  let fast_read = Core.Params.faster_accessor params ~latency:100 in
  let cfg : Spec.Register.op Runs.Config.t =
    Runs.Config.make ~n:2 ~d ~u ~eps
      ~script:
        [
          Sim.Workload.at 0 (Spec.Register.Write 5) 0;
          Sim.Workload.at 0 (Spec.Register.Write 7) 200;
          Sim.Workload.at 1 Spec.Register.Read 950;
        ]
      ()
  in
  let e = H.execute ~params:fast_read cfg in
  Report.line b "fast-read trace: %s" (H.history_line e);
  let entries = Lin.of_trace e.outcome.trace in
  ignore
    (Report.expect b ~what:"the trace violates linearizability"
       (not (Lin.is_linearizable (Lin.check entries))));
  ignore
    (Report.expect b
       ~what:"…but satisfies sequential consistency (write(5)∘read(5)∘write(7))"
       (Lin.is_linearizable (Lin.check_sequentially_consistent entries)));

  (* the standard algorithm satisfies both, of course *)
  let std = H.execute ~params cfg in
  ignore
    (Report.expect b ~what:"standard Algorithm 1: linearizable (hence SC)"
       (H.is_linearizable std
       && Lin.is_linearizable
            (Lin.check_sequentially_consistent (Lin.of_trace std.outcome.trace))));

  (* and SC itself is not vacuous: one process cannot observe values moving
     against its own program order *)
  let backwards : Lin.entry list =
    [
      { pid = 0; op = Spec.Register.Write 5; result = Spec.Register.Ack; invoke = 0; response = 10 };
      { pid = 0; op = Spec.Register.Write 7; result = Spec.Register.Ack; invoke = 20; response = 30 };
      { pid = 1; op = Spec.Register.Read; result = Spec.Register.Value 7; invoke = 40; response = 50 };
      { pid = 1; op = Spec.Register.Read; result = Spec.Register.Value 5; invoke = 60; response = 70 };
    ]
  in
  ignore
    (Report.expect b ~what:"reading 7 then 5 at one process is not even SC"
       (not (Lin.is_linearizable (Lin.check_sequentially_consistent backwards))));
  Report.finish b ~id:"sc"
    ~title:"Linearizability vs sequential consistency (the Ch. I separation)"
