(* Algorithm 1 over real sockets, without the CLI.

     dune exec examples/tcp_cluster.exe

   Three replica stacks — TCP transport, replica node, client port — run in
   this one process on ephemeral loopback ports (the same building blocks
   [timebounds serve] wraps one-per-OS-process; see [timebounds cluster]
   for the forked version).  A client connects to each replica and drives a
   small key-value workload; because the stacks speak the length-prefixed
   wire format through the kernel's TCP stack, every broadcast entry here
   really is encoded, CRC'd, written to a socket, read back and decoded.

   The printed per-class latencies are client-observed wall-clock times
   against the paper's targets: puts (pure mutators) respond in ≈ ε + X,
   gets (pure accessors) in ≈ d + ε − X, swaps (others) in ≤ d + ε — where
   d and u are the *assumed* bounds the replicas run with, inflated by a
   slack over the loopback's real delay to absorb scheduling jitter. *)

module S = Net.Serve.Make (Net.Wire.Kv_wired)
module Cl = Net.Client.Make (Net.Wire.Kv_wired)

let () =
  let n = 3 and d = 7000 and u = 5500 in
  let eps = Core.Params.optimal_eps ~n ~u in
  let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  (* Bind first so every stack knows all the (ephemeral) ports. *)
  let listeners =
    Array.init n (fun _ -> Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:0)
  in
  let addrs =
    Array.map
      (fun (l : Net.Tcp_transport.listener) -> ("127.0.0.1", l.port))
      listeners
  in
  Array.iteri
    (fun pid (host, port) ->
      Format.printf "replica %d: %s:%d@." pid host port)
    addrs;
  (* One shared clock epoch: replica clocks read now − start_us + offset,
     so the offsets below are the *entire* inter-replica skew, as ε assumes. *)
  let start_us = Some (Prelude.Mclock.now_us ()) in
  let rng = Prelude.Rng.make 42 in
  let handles =
    Array.init n (fun pid ->
        S.start ~listener:listeners.(pid)
          {
            Net.Serve.pid;
            addrs;
            params;
            offset = (if pid = 0 then 0 else Prelude.Rng.int rng eps);
            start_us;
            trace = None;
            durable = None;
            fsync = Durable.Wal.Never;
            snapshot_every = 0;
            fallback = None;
            sync = None;
            log = (fun _ -> ());
          })
  in
  let conns =
    Array.map
      (fun (_, port) ->
        match Cl.connect ~host:"127.0.0.1" ~port () with
        | Ok c -> c
        | Error e -> failwith e)
      addrs
  in
  let hist = [| Runtime.Histogram.create (); Runtime.Histogram.create ();
                Runtime.Histogram.create () |] in
  let timed slot conn op =
    let t0 = Prelude.Mclock.now_us () in
    let r = Cl.invoke conn op in
    Runtime.Histogram.add hist.(slot) (Prelude.Mclock.now_us () - t0);
    match r with Ok r -> r | Error e -> failwith e
  in
  let ops = 60 in
  for i = 1 to ops do
    let conn = conns.(i mod n) in
    let k = i mod 8 in
    match i mod 5 with
    | 0 | 1 -> ignore (timed 0 conn (Spec.Kv_map.Put (k, i)))
    | 2 | 3 -> ignore (timed 1 conn (Spec.Kv_map.Get k))
    | _ -> ignore (timed 2 conn (Spec.Kv_map.Swap (k, i)))
  done;
  let t = params.Core.Params.timing in
  List.iteri
    (fun slot (name, rel, target) ->
      Format.printf "  %-4s %a  (target %s %dµs)@." name Runtime.Histogram.pp
        hist.(slot) rel target)
    [
      ("MOP", "≈", t.Core.Params.mutator_wait);
      ("AOP", "≈", t.Core.Params.accessor_wait);
      ("OOP", "≤", params.Core.Params.d + params.Core.Params.eps);
    ];
  (* The transport really moved bytes — ask replica 0 over its client port. *)
  (match Cl.stats conns.(0) with
  | Ok s -> Format.printf "replica 0 transport: %a@." Runtime.Transport_intf.pp_stats s
  | Error e -> failwith e);
  Array.iter Cl.close conns;
  let total =
    Array.fold_left
      (fun acc h ->
        let records, _ = S.stop h in
        acc + List.length records)
      0 handles
  in
  Format.printf "%d ops recorded across %d replicas@." total n;
  if total <> ops then exit 1
