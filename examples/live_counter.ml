(* The X trade-off on real hardware.

     dune exec examples/live_counter.exe

   A replicated counter (the register's self-commuting [Add] increment plus
   [Read]) served by live Algorithm 1 replicas: three OCaml 5 domains
   exchanging messages over the delay-injecting in-process transport, driven
   by closed-loop clients.  The run is repeated with X = 0 and with X at its
   maximum d + ε − u: Algorithm 1 trades pure-mutator latency (ε + X)
   against pure-accessor latency (d + ε − X), and unlike the simulator's
   exact tick identities, here the histograms are *wall-clock* — scheduling
   jitter included — with linearizability re-checked post hoc on each run. *)

module Gen = Runtime.Loadgen.Make (Runtime.Workloads.Counter_live)

let () =
  let n = 3 and d = 2000 and u = 500 in
  let eps = Core.Params.optimal_eps ~n ~u in
  let x_max = d + eps - u in
  let run x = Gen.run ~n ~d ~u ~eps ~x ~ops:240 ~mix:(50, 50, 0) ~seed:11 () in
  let at_zero = run 0 in
  let at_max = run x_max in
  Format.printf "%a@.@.%a@.@." Runtime.Loadgen.pp_report at_zero
    Runtime.Loadgen.pp_report at_max;
  let p50 r name =
    let c = List.find (fun (c : Runtime.Loadgen.class_report) ->
        String.equal c.class_name name) r.Runtime.Loadgen.classes
    in
    Runtime.Histogram.percentile c.hist 50.
  in
  Format.printf
    "X: 0 → %d shifts the p50s: increments (MOP) %dµs → %dµs, reads (AOP) \
     %dµs → %dµs@."
    x_max (p50 at_zero "MOP") (p50 at_max "MOP") (p50 at_zero "AOP")
    (p50 at_max "AOP");
  if not Runtime.Loadgen.(is_linearizable at_zero && is_linearizable at_max)
  then begin
    print_endline "a run was not linearizable!";
    exit 1
  end
