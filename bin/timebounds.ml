(** [timebounds] — command-line front end for the reproduction.

    - [timebounds list] — every reproducible table/figure;
    - [timebounds experiment <id>...] — run experiments (default: all);
    - [timebounds tables] — print Tables I–IV with formulas evaluated;
    - [timebounds classify <object>] — Chapter II classification summary;
    - [timebounds derive <object>] — derive an object's bound table from
      its operation algebra;
    - [timebounds graph <object> [--dot]] — its commutativity graph;
    - [timebounds live --object <w>] — Algorithm 1 on real domains: load
      generator, per-class latency histograms, post-hoc linearizability. *)

open Cmdliner

let list_cmd =
  let doc = "List every reproducible table and figure." in
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Format.printf "%-10s %s@." e.id e.title)
      (Experiments.Registry.all ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let experiment_cmd =
  let doc = "Run experiments by id (all when no id is given)." in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    let entries =
      match ids with
      | [] -> Experiments.Registry.all ()
      | ids ->
          List.filter_map
            (fun id ->
              match Experiments.Registry.find id with
              | Some e -> Some e
              | None ->
                  Format.eprintf "unknown experiment %s (try `timebounds list`)@." id;
                  None)
            ids
    in
    let reports = List.map (fun (e : Experiments.Registry.entry) -> e.run ()) entries in
    List.iter (fun r -> Format.printf "%a@." Experiments.Report.pp r) reports;
    let failed = List.filter (fun (r : Experiments.Report.t) -> not r.ok) reports in
    if failed <> [] then begin
      Format.printf "MISMATCHES: %s@."
        (String.concat ", " (List.map (fun (r : Experiments.Report.t) -> r.id) failed));
      exit 1
    end
  in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ ids)

let tables_cmd =
  let doc = "Print Tables I-IV with bound formulas evaluated." in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"number of processes") in
  let d = Arg.(value & opt int 1200 & info [ "d" ] ~doc:"delay upper bound") in
  let u = Arg.(value & opt int 400 & info [ "u" ] ~doc:"delay uncertainty") in
  let run n d u =
    let eps = Core.Params.optimal_eps ~n ~u in
    let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
    List.iter
      (fun t -> Format.printf "%a@." (Bounds.Formulas.pp_table params) t)
      Bounds.Formulas.all_tables
  in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ n $ d $ u)

let classify_cmd =
  let doc =
    "Classify the operations of an object \
     (register|queue|stack|stack-obs|set|tree|bst|array|log|kv|pqueue)."
  in
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let run obj =
    let summarize (type s o r)
        (module D : Spec.Data_type.SAMPLED with type state = s and type op = o and type result = r) =
      let module C = Classify.Checkers.Make (D) in
      Format.printf "%s:@." D.name;
      List.iter
        (fun ty -> Format.printf "  %a@." C.pp_summary (C.summarize ty))
        D.op_types
    in
    match obj with
    | "register" -> summarize (module Spec.Register)
    | "queue" -> summarize (module Spec.Fifo_queue)
    | "stack" -> summarize (module Spec.Lifo_stack)
    | "stack-obs" -> summarize (module Spec.Lifo_stack_obs)
    | "set" -> summarize (module Spec.Int_set)
    | "tree" -> summarize (module Spec.Rooted_tree)
    | "bst" -> summarize (module Spec.Bst)
    | "array" -> summarize (module Spec.Update_array)
    | "log" -> summarize (module Spec.Append_log)
    | "kv" -> summarize (module Spec.Kv_map)
    | "pqueue" -> summarize (module Spec.Priority_queue)
    | other ->
        Format.eprintf "unknown object %s@." other;
        exit 1
  in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run $ obj)

let derive_cmd =
  let doc =
    "Derive the bound table of an object from its operation algebra \
     (register|queue|stack|stack-obs|set|tree|bst|array|log|kv)."
  in
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let run obj =
    let params = Core.Params.make ~n:5 ~d:1200 ~u:400 ~eps:320 ~x:0 () in
    let show (type s o r)
        (module D : Spec.Data_type.SAMPLED with type state = s and type op = o and type result = r) =
      let module Dv = Bounds.Derive.Make (D) in
      Format.printf "%s (derived at n=5 d=1200 u=400 ε=320 X=0):@." D.name;
      List.iter
        (fun row -> Format.printf "  %a@." (Bounds.Derive.pp_row params) row)
        (Dv.derive ())
    in
    match obj with
    | "register" -> show (module Spec.Register)
    | "queue" -> show (module Spec.Fifo_queue)
    | "stack" -> show (module Spec.Lifo_stack)
    | "stack-obs" -> show (module Spec.Lifo_stack_obs)
    | "set" -> show (module Spec.Int_set)
    | "tree" -> show (module Spec.Rooted_tree)
    | "bst" -> show (module Spec.Bst)
    | "array" -> show (module Spec.Update_array)
    | "log" -> show (module Spec.Append_log)
    | "kv" -> show (module Spec.Kv_map)
    | other ->
        Format.eprintf "unknown object %s@." other;
        exit 1
  in
  Cmd.v (Cmd.info "derive" ~doc) Term.(const run $ obj)

let graph_cmd =
  let doc = "Print an object's commutativity graph (Kosa-style); --dot for Graphviz." in
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"emit Graphviz DOT") in
  let run obj dot =
    let show (type s o r)
        (module D : Spec.Data_type.SAMPLED with type state = s and type op = o and type result = r) =
      let module B = Classify.Commutativity_graph.Build (D) in
      let g = B.build () in
      if dot then print_string (Classify.Commutativity_graph.to_dot g)
      else Format.printf "%a" Classify.Commutativity_graph.pp g
    in
    match obj with
    | "register" -> show (module Spec.Register)
    | "queue" -> show (module Spec.Fifo_queue)
    | "stack" -> show (module Spec.Lifo_stack)
    | "set" -> show (module Spec.Int_set)
    | "tree" -> show (module Spec.Rooted_tree)
    | "bst" -> show (module Spec.Bst)
    | "array" -> show (module Spec.Update_array)
    | "log" -> show (module Spec.Append_log)
    | "kv" -> show (module Spec.Kv_map)
    | "pqueue" -> show (module Spec.Priority_queue)
    | other ->
        Format.eprintf "unknown object %s@." other;
        exit 1
  in
  Cmd.v (Cmd.info "graph" ~doc) Term.(const run $ obj $ dot)

let live_cmd =
  let doc =
    "Run Algorithm 1 live: replicas on real domains, delays injected in \
     [d-u, d] microseconds, a closed-loop load generator, wall-clock \
     latency histograms per operation class, and a post-hoc \
     linearizability check."
  in
  let obj =
    Arg.(
      value
      & opt string "register"
      & info [ "object" ]
          ~doc:
            (Printf.sprintf "Workload (%s)."
               (String.concat "|" Runtime.Workloads.names)))
  in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"number of replicas") in
  let d = Arg.(value & opt int 2000 & info [ "d" ] ~doc:"delay upper bound (µs)") in
  let u = Arg.(value & opt int 500 & info [ "u" ] ~doc:"delay uncertainty (µs)") in
  let eps =
    Arg.(
      value
      & opt (some int) None
      & info [ "eps" ] ~doc:"clock-skew bound (µs); default (1 - 1/n)u")
  in
  let x = Arg.(value & opt int 0 & info [ "x" ] ~doc:"trade-off knob X (µs)") in
  let slack =
    Arg.(
      value
      & opt int 5000
      & info [ "slack" ]
          ~doc:"scheduling-jitter headroom added to the d/u the replicas assume (µs)")
  in
  let ops = Arg.(value & opt int 1000 & info [ "ops" ] ~doc:"total operations") in
  let mix =
    Arg.(
      value
      & opt (t3 ~sep:':' int int int) (50, 40, 10)
      & info [ "mix" ] ~doc:"mutator:accessor:other weights, e.g. 50:40:10")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~doc:"closed-loop client domains; default n")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed") in
  let loss =
    Arg.(
      value
      & opt int 0
      & info [ "loss" ]
          ~doc:
            "percentage of messages dropped (Algorithm 1 has no \
             retransmission: expect a linearizability violation)")
  in
  let run obj n d u eps x slack ops mix workers seed loss =
    match Runtime.Workloads.find obj with
    | None ->
        Format.eprintf "unknown workload %s (have: %s)@." obj
          (String.concat ", " Runtime.Workloads.names);
        exit 1
    | Some (module L : Runtime.Workloads.LIVE) ->
        let module Gen = Runtime.Loadgen.Make (L) in
        let report =
          Gen.run ~n ~d ~u ?eps ~x ~slack ?workers ~mix ~loss ~ops ~seed ()
        in
        Format.printf "%a@." Runtime.Loadgen.pp_report report;
        if not (Runtime.Loadgen.is_linearizable report) then exit 1
  in
  Cmd.v (Cmd.info "live" ~doc)
    Term.(
      const run $ obj $ n $ d $ u $ eps $ x $ slack $ ops $ mix $ workers
      $ seed $ loss)

let main =
  let doc = "Reproduction of \"Time Bounds for Shared Objects in Partially Synchronous Systems\"" in
  Cmd.group
    (Cmd.info "timebounds" ~doc)
    [
      list_cmd; experiment_cmd; tables_cmd; classify_cmd; derive_cmd;
      graph_cmd; live_cmd;
    ]

(* Cmdliner renders one-letter option names short-only ([-n]); accept the
   long spellings ([--n 3], [--n=3]) people naturally type too. *)
let argv =
  let shorten a =
    let glued name =
      let p = "--" ^ name ^ "=" in
      if String.length a > String.length p && String.sub a 0 (String.length p) = p
      then
        Some
          ("-" ^ name
          ^ String.sub a (String.length p) (String.length a - String.length p))
      else None
    in
    let rec first = function
      | [] -> a
      | name :: rest -> (
          if a = "--" ^ name then "-" ^ name
          else match glued name with Some g -> g | None -> first rest)
    in
    first [ "n"; "d"; "u"; "x" ]
  in
  Array.map shorten Sys.argv

let () = exit (Cmd.eval ~argv main)
