(** [timebounds] — command-line front end for the reproduction.

    - [timebounds list] — every reproducible table/figure;
    - [timebounds experiment <id>...] — run experiments (default: all);
    - [timebounds tables] — print Tables I–IV with formulas evaluated;
    - [timebounds classify <object>] — Chapter II classification summary;
    - [timebounds derive <object>] — derive an object's bound table from
      its operation algebra;
    - [timebounds graph <object> [--dot]] — its commutativity graph;
    - [timebounds live --object <w>] — Algorithm 1 on real domains: load
      generator, per-class latency histograms, post-hoc linearizability;
    - [timebounds serve --pid i --peers h:p,...] — one replica as an OS
      process over TCP (normally forked by [cluster]);
    - [timebounds cluster --n 3 --object kv --ops 500] — fork n local
      [serve] processes, drive them over loopback TCP, verify;
    - [timebounds chaos --plan "crash(1)@0.4s;restart(1)@0.9s"] — either of
      the above under a seeded fault-injection plan, with
      assumption-violation windows correlated against the verdict;
    - [timebounds trace [--processes] [--chrome t.json] [--prom m.prom]] —
      record a traced run (in-process or real cluster), assemble
      per-operation causal spans, decompose latency (hold / wire / remote
      queueing) and attribute each operation to its paper bound.

    All flags accept [--name v], [--name=v] and [-name v] (see {!Cli}). *)

let args cmd = (Printf.sprintf "timebounds %s" cmd, List.tl (List.tl (Array.to_list Sys.argv)))

(* ---- list ---- *)

let list_cmd () =
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      Format.printf "%-10s %s@." e.id e.title)
    (Experiments.Registry.all ())

(* ---- experiment ---- *)

let experiment_cmd () =
  let prog, argv = args "experiment [ID...]" in
  let c = Cli.parse ~prog ~specs:[] argv in
  let entries =
    match Cli.positionals c with
    | [] -> Experiments.Registry.all ()
    | ids ->
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
                Format.eprintf "unknown experiment %s (try `timebounds list`)@."
                  id;
                None)
          ids
  in
  let reports =
    List.map (fun (e : Experiments.Registry.entry) -> e.run ()) entries
  in
  List.iter (fun r -> Format.printf "%a@." Experiments.Report.pp r) reports;
  let failed =
    List.filter (fun (r : Experiments.Report.t) -> not r.ok) reports
  in
  if failed <> [] then begin
    Format.printf "MISMATCHES: %s@."
      (String.concat ", "
         (List.map (fun (r : Experiments.Report.t) -> r.id) failed));
    exit 1
  end

(* ---- tables ---- *)

let tables_cmd () =
  let prog, argv = args "tables" in
  let specs =
    [
      Cli.value "n" "number of processes (default 5)";
      Cli.value "d" "delay upper bound (default 1200)";
      Cli.value "u" "delay uncertainty (default 400)";
    ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let n = Cli.int c "n" ~default:5 in
  let d = Cli.int c "d" ~default:1200 in
  let u = Cli.int c "u" ~default:400 in
  let eps = Core.Params.optimal_eps ~n ~u in
  let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  List.iter
    (fun t -> Format.printf "%a@." (Bounds.Formulas.pp_table params) t)
    Bounds.Formulas.all_tables

(* ---- classify / derive / graph: object dispatch ---- *)

let object_arg c = function
  | [ obj ] -> obj
  | [] -> Cli.fail c "missing OBJECT argument"
  | _ -> Cli.fail c "expected exactly one OBJECT argument"

let classify_cmd () =
  let prog, argv =
    args "classify <register|queue|stack|stack-obs|set|tree|bst|array|log|kv|pqueue>"
  in
  let c = Cli.parse ~prog ~specs:[] argv in
  let obj = object_arg c (Cli.positionals c) in
  let summarize (type s o r)
      (module D : Spec.Data_type.SAMPLED
        with type state = s and type op = o and type result = r) =
    let module C = Classify.Checkers.Make (D) in
    Format.printf "%s:@." D.name;
    List.iter
      (fun ty -> Format.printf "  %a@." C.pp_summary (C.summarize ty))
      D.op_types
  in
  match obj with
  | "register" -> summarize (module Spec.Register)
  | "queue" -> summarize (module Spec.Fifo_queue)
  | "stack" -> summarize (module Spec.Lifo_stack)
  | "stack-obs" -> summarize (module Spec.Lifo_stack_obs)
  | "set" -> summarize (module Spec.Int_set)
  | "tree" -> summarize (module Spec.Rooted_tree)
  | "bst" -> summarize (module Spec.Bst)
  | "array" -> summarize (module Spec.Update_array)
  | "log" -> summarize (module Spec.Append_log)
  | "kv" -> summarize (module Spec.Kv_map)
  | "pqueue" -> summarize (module Spec.Priority_queue)
  | other ->
      Format.eprintf "unknown object %s@." other;
      exit 1

let derive_cmd () =
  let prog, argv =
    args "derive <register|queue|stack|stack-obs|set|tree|bst|array|log|kv>"
  in
  let c = Cli.parse ~prog ~specs:[] argv in
  let obj = object_arg c (Cli.positionals c) in
  let params = Core.Params.make ~n:5 ~d:1200 ~u:400 ~eps:320 ~x:0 () in
  let show (type s o r)
      (module D : Spec.Data_type.SAMPLED
        with type state = s and type op = o and type result = r) =
    let module Dv = Bounds.Derive.Make (D) in
    Format.printf "%s (derived at n=5 d=1200 u=400 ε=320 X=0):@." D.name;
    List.iter
      (fun row -> Format.printf "  %a@." (Bounds.Derive.pp_row params) row)
      (Dv.derive ())
  in
  match obj with
  | "register" -> show (module Spec.Register)
  | "queue" -> show (module Spec.Fifo_queue)
  | "stack" -> show (module Spec.Lifo_stack)
  | "stack-obs" -> show (module Spec.Lifo_stack_obs)
  | "set" -> show (module Spec.Int_set)
  | "tree" -> show (module Spec.Rooted_tree)
  | "bst" -> show (module Spec.Bst)
  | "array" -> show (module Spec.Update_array)
  | "log" -> show (module Spec.Append_log)
  | "kv" -> show (module Spec.Kv_map)
  | other ->
      Format.eprintf "unknown object %s@." other;
      exit 1

let graph_cmd () =
  let prog, argv = args "graph <object> [--dot]" in
  let specs = [ Cli.flag "dot" "emit Graphviz DOT" ] in
  let c = Cli.parse ~prog ~specs argv in
  let obj = object_arg c (Cli.positionals c) in
  let dot = Cli.given c "dot" in
  let show (type s o r)
      (module D : Spec.Data_type.SAMPLED
        with type state = s and type op = o and type result = r) =
    let module B = Classify.Commutativity_graph.Build (D) in
    let g = B.build () in
    if dot then print_string (Classify.Commutativity_graph.to_dot g)
    else Format.printf "%a" Classify.Commutativity_graph.pp g
  in
  match obj with
  | "register" -> show (module Spec.Register)
  | "queue" -> show (module Spec.Fifo_queue)
  | "stack" -> show (module Spec.Lifo_stack)
  | "set" -> show (module Spec.Int_set)
  | "tree" -> show (module Spec.Rooted_tree)
  | "bst" -> show (module Spec.Bst)
  | "array" -> show (module Spec.Update_array)
  | "log" -> show (module Spec.Append_log)
  | "kv" -> show (module Spec.Kv_map)
  | "pqueue" -> show (module Spec.Priority_queue)
  | other ->
      Format.eprintf "unknown object %s@." other;
      exit 1

(* ---- shared timing flags for live / serve / cluster ---- *)

let timing_specs =
  [
    Cli.value "d" "delay upper bound, µs (default 2000)";
    Cli.value "u" "delay uncertainty, µs (default 500)";
    Cli.value "eps" "clock-skew bound, µs; default (1 - 1/n)u";
    Cli.value "x" "trade-off knob X, µs (default 0)";
    Cli.value "slack" "scheduling-jitter headroom, µs (default 5000)";
  ]

let timing_args c =
  ( Cli.int c "d" ~default:2000,
    Cli.int c "u" ~default:500,
    Cli.int_opt c "eps",
    Cli.int c "x" ~default:0,
    Cli.int c "slack" ~default:5000 )

let fallback_specs =
  [
    Cli.value "fallback"
      "degraded-mode policy: quorum (adaptive ABD fallback) or none \
       (default none)";
    Cli.value "hb-us" "fallback heartbeat interval, µs (default 2500)";
    Cli.value "suspect-after"
      "missed heartbeat intervals before suspecting a peer (default 40)";
  ]

let fallback_args c =
  match Cli.str c "fallback" ~default:"none" with
  | "none" -> None
  | "quorum" ->
      (* In-process runs have no [Net.Serve] hook composition, so verbose
         mode/suspicion logging is attached here (processes log their own). *)
      let verbose = Cli.given c "verbose" in
      Some
        {
          Quorum.Config.hb_us = Cli.int c "hb-us" ~default:2_500;
          suspect_after = Cli.int c "suspect-after" ~default:40;
          on_mode =
            (fun ~quorum ~epoch ~seq ->
              if verbose then
                Printf.eprintf "[fallback] mode: %s(epoch=%d seq=%d)\n%!"
                  (if quorum then "quorum" else "fast")
                  epoch seq);
          on_suspect =
            (fun ~peer ~suspected ->
              if verbose then
                Printf.eprintf "[fallback] %s peer %d\n%!"
                  (if suspected then "suspecting" else "cleared")
                  peer);
        }
  | other -> Cli.fail c (Printf.sprintf "bad --fallback %s (quorum|none)" other)

let sync_specs =
  [
    Cli.value "sync"
      "live clock synchronization: on (measure ε over the wire and slew \
       each replica's clock toward the Lundelius-Lynch midpoint) or off \
       (default off)";
    Cli.value "sync-interval-us"
      "clock-sync probe round interval, µs (default 50000)";
    Cli.value "sync-u"
      "one-way uncertainty bound for piggybacked heartbeat samples, µs \
       (default: the effective u)";
  ]

(* [d]/[u] are the *effective* bounds (slack folded in) — the sync
   estimator prices its one-way samples off them, exactly the bounds the
   replicas time with. *)
let sync_args c ~d ~u =
  match Cli.str c "sync" ~default:"off" with
  | "off" -> None
  | "on" ->
      let interval_us =
        Cli.int c "sync-interval-us" ~default:Sync.Config.default_interval_us
      in
      let su = Cli.int c "sync-u" ~default:u in
      (* In-process runs have no [Net.Serve] hook composition, so verbose
         achieved-ε logging is attached here (processes log their own). *)
      let verbose = Cli.given c "verbose" in
      let on_eps ~eps_us ~peers =
        if verbose then
          Printf.eprintf "[sync] eps=%dus peers=%d\n%!" eps_us peers
      in
      Some (Sync.Config.make ~interval_us ~d ~u:su ~on_eps ())
  | other -> Cli.fail c (Printf.sprintf "bad --sync %s (on|off)" other)

(* ---- live ---- *)

let live_cmd () =
  let prog, argv = args "live" in
  let specs =
    [
      Cli.value "object"
        (Printf.sprintf "workload (%s; default register)"
           (String.concat "|" Runtime.Workloads.names));
      Cli.value "n" "number of replicas (default 3)";
    ]
    @ timing_specs
    @ [
        Cli.value "ops" "total operations (default 1000)";
        Cli.value "mix" "mutator:accessor:other weights (default 50:40:10)";
        Cli.value "workers" "closed-loop client domains; default n";
        Cli.value "seed" "RNG seed (default 1)";
        Cli.value "loss" "percentage of messages dropped (default 0)";
      ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let obj = Cli.str c "object" ~default:"register" in
  match Runtime.Workloads.find obj with
  | None ->
      Format.eprintf "unknown workload %s (have: %s)@." obj
        (String.concat ", " Runtime.Workloads.names);
      exit 1
  | Some (module L : Runtime.Workloads.LIVE) ->
      let n = Cli.int c "n" ~default:3 in
      let d, u, eps, x, slack = timing_args c in
      let ops = Cli.int c "ops" ~default:1000 in
      let mix = Cli.mix c "mix" ~default:(50, 40, 10) in
      let workers = Cli.int_opt c "workers" in
      let seed = Cli.int c "seed" ~default:1 in
      let loss = Cli.int c "loss" ~default:0 in
      let module Gen = Runtime.Loadgen.Make (L) in
      let report =
        Gen.run ~n ~d ~u ?eps ~x ~slack ?workers ~mix ~loss ~ops ~seed ()
      in
      Format.printf "%a@." Runtime.Loadgen.pp_report report;
      if not (Runtime.Loadgen.is_linearizable report) then exit 1

(* ---- sync ---- *)

(* In-process convergence demo for DESIGN.md §14: n replicas on one domain
   bus, raw clocks skewed evenly across ±--skew, probing every
   --sync-interval-us.  Nodes are assembled by hand rather than through
   [R.start] so each replica gets its own [Sync.Config] whose [on_eps]
   hook closes over the pid — the shared-config path cannot attribute
   achieved-ε rounds to replicas. *)
let sync_cmd () =
  let prog, argv = args "sync" in
  let specs =
    [
      Cli.value "n" "number of replicas (default 3)";
      Cli.value "skew"
        "initial clock offsets span ±SKEW µs across the replicas (default \
         2000)";
      Cli.value "rounds" "sync rounds to observe before judging (default 10)";
    ]
    @ timing_specs
    @ [
        Cli.value "sync-interval-us"
          (Printf.sprintf "probe-round interval, µs (default %d)"
             Sync.Config.default_interval_us);
      ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let n = Cli.int c "n" ~default:3 in
  if n < 2 then Cli.fail c "--n must be at least 2";
  let skew = Cli.int c "skew" ~default:2000 in
  if skew < 0 then Cli.fail c "--skew must be >= 0";
  let rounds = Cli.int c "rounds" ~default:10 in
  if rounds < 1 then Cli.fail c "--rounds must be >= 1";
  let d, u, eps, x, slack = timing_args c in
  (* Default the admissible bound to the injected spread: the demo starts
     at the edge of admissibility and must earn its way below it. *)
  let eps =
    match eps with
    | Some e -> e
    | None -> max (2 * skew) (Core.Params.optimal_eps ~n ~u)
  in
  let params = Core.Params.make ~n ~d:(d + slack) ~u:(u + slack) ~eps ~x () in
  let interval_us =
    Cli.int c "sync-interval-us" ~default:Sync.Config.default_interval_us
  in
  (* Evenly-spaced offsets over [+skew, −skew]: pid 0 fastest, n−1 slowest. *)
  let offsets = Array.init n (fun i -> skew - (2 * skew * i / (n - 1))) in
  let lock = Mutex.create () in
  (* Per pid: (achieved eps, contributing peers) per round, newest first. *)
  let history = Array.make n [] in
  let sync_for pid =
    Sync.Config.make ~interval_us ~d:params.Core.Params.d
      ~u:params.Core.Params.u
      ~on_eps:(fun ~eps_us ~peers ->
        Mutex.lock lock;
        history.(pid) <- (eps_us, peers) :: history.(pid);
        Mutex.unlock lock)
      ()
  in
  let module R = Runtime.Replica.Make (Spec.Register) in
  let bus = Runtime.Transport.bus ~n () in
  let transport = Runtime.Transport.intf bus in
  let start_us = Prelude.Mclock.now_us () in
  let nodes =
    Array.init n (fun pid ->
        R.node ~params ~transport ~pid ~offset:offsets.(pid) ~start_us
          ~sync:(sync_for pid) ())
  in
  let enough () =
    Mutex.lock lock;
    let k =
      Array.fold_left (fun k h -> min k (List.length h)) max_int history
    in
    Mutex.unlock lock;
    k >= rounds
  in
  let deadline =
    Prelude.Mclock.now_us () + ((rounds + 5) * interval_us) + 2_000_000
  in
  while (not (enough ())) && Prelude.Mclock.now_us () < deadline do
    Prelude.Mclock.sleep_us (max 1_000 (interval_us / 4))
  done;
  Array.iter (fun node -> ignore (R.node_stop node)) nodes;
  let per_pid = Array.map (fun h -> Array.of_list (List.rev h)) history in
  Format.printf
    "clock sync: n=%d offsets ±%dus interval=%dus configured eps=%dus@." n
    skew interval_us eps;
  let shown =
    Array.fold_left (fun k (h : _ array) -> max k (Array.length h)) 0 per_pid
  in
  Format.printf "%6s" "round";
  for pid = 0 to n - 1 do
    Format.printf "%10s" (Printf.sprintf "r%d" pid)
  done;
  Format.printf "%10s@." "max";
  let first_below = ref 0 in
  for r = 0 to shown - 1 do
    Format.printf "%6d" (r + 1);
    let mx = ref 0 and complete = ref true in
    for pid = 0 to n - 1 do
      if r < Array.length per_pid.(pid) then begin
        let e, _ = per_pid.(pid).(r) in
        mx := max !mx e;
        Format.printf "%10s" (Printf.sprintf "%dus" e)
      end
      else begin
        complete := false;
        Format.printf "%10s" "-"
      end
    done;
    Format.printf "%10s@." (Printf.sprintf "%dus" !mx);
    if !first_below = 0 && !complete && !mx < eps then first_below := r + 1
  done;
  let final =
    Array.fold_left
      (fun acc (h : _ array) ->
        if Array.length h = 0 then max_int
        else
          let e, _ = h.(Array.length h - 1) in
          max acc e)
      0 per_pid
  in
  if final = max_int then begin
    Format.printf "no sync rounds observed — is the interval too long?@.";
    exit 1
  end
  else if final < eps then
    Format.printf
      "converged: achieved eps %dus < configured %dus (first below at round \
       %d of %d)@."
      final eps !first_below shown
  else begin
    Format.printf "NOT CONVERGED: achieved eps %dus >= configured %dus@." final
      eps;
    exit 1
  end

(* ---- serve ---- *)

let serve_cmd () =
  let prog, argv = args "serve" in
  let specs =
    [
      Cli.value "pid" "this replica's id, 0-based (required)";
      Cli.value "peers"
        "every replica's address as host:port,host:port,... (required; \
         index = pid)";
      Cli.value "object"
        (Printf.sprintf "wire object (%s; default register)"
           (String.concat "|" Net.Wire.names));
    ]
    @ timing_specs
    @ [
        Cli.value "offset" "this replica's clock offset, µs (default 0)";
        Cli.value "epoch"
          "shared clock epoch, µs on the wall clock (default: now); every \
           replica of a cluster must use the same value";
        Cli.value "watch-parent" "exit when this OS pid disappears";
        Cli.value "chaos"
          "fault plan spec, e.g. 'drop(20)/0>1;spike(3ms)@0.2s-0.6s' (see \
           `timebounds chaos --help`)";
        Cli.value "chaos-seed" "seed for the fault plan (default 0)";
        Cli.value "trace"
          "write this replica's observability events to FILE (binary; read \
           with `timebounds trace`)";
        Cli.value "durable"
          "durable directory: WAL + snapshots; on start, recover and catch \
           up from peers";
        Cli.value "fsync"
          "WAL fsync policy: always | interval[:N] | never (default \
           interval)";
        Cli.value "snapshot-every"
          "checkpoint after this many WAL records (default 1024; 0 = never)";
      ]
    @ fallback_specs @ sync_specs
    @ [ Cli.flag "quiet" "suppress per-replica logging" ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let pid =
    match Cli.int_opt c "pid" with
    | Some p -> p
    | None -> Cli.fail c "--pid is required"
  in
  let addrs =
    match Cli.str_opt c "peers" with
    | Some v -> Cli.peers c "peers" v
    | None -> Cli.fail c "--peers is required"
  in
  let n = Array.length addrs in
  if pid < 0 || pid >= n then
    Cli.fail c (Printf.sprintf "--pid %d out of range for %d peers" pid n);
  let obj = Cli.str c "object" ~default:"register" in
  match Net.Wire.find obj with
  | None ->
      Format.eprintf "unknown wire object %s (have: %s)@." obj
        (String.concat ", " Net.Wire.names);
      exit 1
  | Some (module W : Net.Wire.WIRED) ->
      let d, u, eps, x, slack = timing_args c in
      let eps =
        match eps with Some e -> e | None -> Core.Params.optimal_eps ~n ~u
      in
      let params =
        Core.Params.make ~n ~d:(d + slack) ~u:(u + slack) ~eps ~x ()
      in
      let offset = Cli.int c "offset" ~default:0 in
      let start_us = Cli.int_opt c "epoch" in
      let watch_parent = Cli.int_opt c "watch-parent" in
      let log =
        if Cli.given c "quiet" then fun _ -> ()
        else fun s -> Printf.eprintf "[serve] %s\n%!" s
      in
      let wrap =
        match Cli.str_opt c "chaos" with
        | None -> None
        | Some spec -> (
            let cseed = Cli.int c "chaos-seed" ~default:0 in
            match Fault.Fault_plan.compile ~seed:cseed ~spec with
            | Error e -> Cli.fail c ("bad --chaos plan: " ^ e)
            | Ok plan ->
                Some
                  (Fault.Chaos_transport.wrapper
                     (Fault.Chaos_transport.create plan)))
      in
      let trace = Cli.str_opt c "trace" in
      let durable = Cli.str_opt c "durable" in
      let fsync =
        match Durable.Wal.fsync_of_string (Cli.str c "fsync" ~default:"interval") with
        | Ok f -> f
        | Error e -> Cli.fail c ("bad --fsync: " ^ e)
      in
      let snapshot_every = Cli.int c "snapshot-every" ~default:1024 in
      let fallback = fallback_args c in
      let sync =
        sync_args c ~d:params.Core.Params.d ~u:params.Core.Params.u
      in
      let module S = Net.Serve.Make (W) in
      S.run_until_signalled ?watch_parent ?wrap
        {
          Net.Serve.pid;
          addrs;
          params;
          offset;
          start_us;
          trace;
          durable;
          fsync;
          snapshot_every;
          fallback;
          sync;
          log;
        }

(* ---- cluster ---- *)

let cluster_cmd () =
  let prog, argv = args "cluster" in
  let specs =
    [
      Cli.value "n" "number of replica processes (default 3)";
      Cli.value "object"
        (Printf.sprintf "wire object (%s; default register)"
           (String.concat "|" Net.Wire.names));
    ]
    @ timing_specs
    @ [
        Cli.value "ops" "total operations (default 500)";
        Cli.value "mix" "mutator:accessor:other weights (default 50:40:10)";
        Cli.value "workers" "closed-loop client domains; default n";
        Cli.value "round" "operations per quiescent round (default 24)";
        Cli.value "seed" "RNG seed (default 1)";
        Cli.value "host" "bind/connect host (default 127.0.0.1)";
        Cli.value "base-port" "first replica port (default 7600)";
        Cli.value "durable"
          "directory for per-replica durable state (WAL + snapshots); \
           clients switch to idempotent retries";
        Cli.value "fsync"
          "WAL fsync policy: always | interval[:N] | never (default \
           interval)";
        Cli.value "snapshot-every"
          "checkpoint after this many WAL records (default 1024; 0 = never)";
      ]
    @ fallback_specs @ sync_specs
    @ [ Cli.flag "verbose" "log child lifecycle to stderr" ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let obj = Cli.str c "object" ~default:"register" in
  match Net.Wire.find obj with
  | None ->
      Format.eprintf "unknown wire object %s (have: %s)@." obj
        (String.concat ", " Net.Wire.names);
      exit 1
  | Some (module W : Net.Wire.WIRED) ->
      let n = Cli.int c "n" ~default:3 in
      let d, u, eps, x, slack = timing_args c in
      let ops = Cli.int c "ops" ~default:500 in
      let mix = Cli.mix c "mix" ~default:(50, 40, 10) in
      let workers = Cli.int_opt c "workers" in
      let round = Cli.int c "round" ~default:48 in
      let seed = Cli.int c "seed" ~default:1 in
      let host = Cli.str c "host" ~default:"127.0.0.1" in
      let base_port = Cli.int c "base-port" ~default:7600 in
      let log =
        if Cli.given c "verbose" then fun s ->
          Printf.eprintf "[cluster] %s\n%!" s
        else fun _ -> ()
      in
      let abort = Atomic.make false in
      Sys.set_signal Sys.sigint
        (Sys.Signal_handle (fun _ -> Atomic.set abort true));
      let durable_dir = Cli.str_opt c "durable" in
      let fsync = Cli.str c "fsync" ~default:"interval" in
      (match Durable.Wal.fsync_of_string fsync with
      | Ok _ -> ()
      | Error e -> Cli.fail c ("bad --fsync: " ^ e));
      let snapshot_every = Cli.int c "snapshot-every" ~default:1024 in
      let fallback = fallback_args c in
      let sync = sync_args c ~d:(d + slack) ~u:(u + slack) in
      let module Cl = Net.Cluster.Make (W) in
      let report =
        Cl.run ~n ~d ~u ?eps ~x ~slack ?workers ~round ~mix ~host ~base_port
          ~log ~abort ?durable_dir ~fsync ~snapshot_every ?fallback ?sync ~ops
          ~seed ()
      in
      Format.printf "%a@." Net.Cluster.pp_report report;
      if not (Net.Cluster.ok report) then exit 1

(* ---- chaos ---- *)

let chaos_cmd () =
  let prog, argv = args "chaos" in
  let specs =
    [
      Cli.value "object"
        (Printf.sprintf "workload (%s; default register)"
           (String.concat "|" Net.Wire.names));
      Cli.value "n" "number of replicas (default 3)";
    ]
    @ timing_specs
    @ [
        Cli.value "plan"
          "fault plan: rules name(args)[/src>dst][@from[-until]] joined by \
           ';'. Names: drop(P) dup(P) spike(E) jitter(M) \
           partition(a,b|c,d) crash(P) restart(P) skew(P,OFF) flood(K). \
           Times take us/ms/s suffixes. Default 'spike(3ms)@0.2s-0.6s'";
        Cli.value "chaos-seed" "seed for the plan's coin flips (default: seed)";
        Cli.value "ops" "total operations (default 600)";
        Cli.value "mix" "mutator:accessor:other weights (default 50:40:10)";
        Cli.value "workers" "closed-loop client domains; default n";
        Cli.value "round" "operations per quiescent round (default 24)";
        Cli.value "seed" "RNG seed for the load (default 1)";
        Cli.flag "processes"
          "run as a real multi-process TCP cluster (crashes become SIGKILL \
           + supervised restart) instead of in-process domains";
        Cli.value "host" "bind/connect host (default 127.0.0.1)";
        Cli.value "base-port" "first replica port (default 7650)";
        Cli.flag "recovery"
          "enable durable crash recovery: crashed replicas freeze (or die) \
           with state on disk, recover, catch up from peers; clients retry \
           idempotently — crash/restart runs can then be checked for \
           linearizability instead of excused";
        Cli.value "durable"
          "durable state directory for --processes --recovery (default: a \
           fresh dir under the system temp dir)";
        Cli.value "fsync"
          "WAL fsync policy: always | interval[:N] | never (default \
           interval)";
        Cli.value "snapshot-every"
          "checkpoint after this many WAL records (default 1024; 0 = never)";
      ]
    @ fallback_specs @ sync_specs
    @ [
        Cli.flag "show-log" "print the canonical injected-fault log";
        Cli.flag "verbose" "log fault injection and child lifecycle";
      ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let obj = Cli.str c "object" ~default:"register" in
  match Net.Wire.find obj with
  | None ->
      Format.eprintf "unknown workload %s (have: %s)@." obj
        (String.concat ", " Net.Wire.names);
      exit 1
  | Some (module W : Net.Wire.WIRED) -> (
      let n = Cli.int c "n" ~default:3 in
      let d, u, eps, x, slack = timing_args c in
      let ops = Cli.int c "ops" ~default:600 in
      let mix = Cli.mix c "mix" ~default:(50, 40, 10) in
      let workers = Cli.int_opt c "workers" in
      let round = Cli.int c "round" ~default:24 in
      let seed = Cli.int c "seed" ~default:1 in
      let spec = Cli.str c "plan" ~default:"spike(3ms)@0.2s-0.6s" in
      let cseed = Cli.int c "chaos-seed" ~default:seed in
      match Fault.Fault_plan.compile ~seed:cseed ~spec with
      | Error e -> Cli.fail c ("bad --plan: " ^ e)
      | Ok plan ->
          let recovery = Cli.given c "recovery" in
          let fallback = fallback_args c in
          let sync = sync_args c ~d:(d + slack) ~u:(u + slack) in
          if Cli.given c "processes" then begin
            let host = Cli.str c "host" ~default:"127.0.0.1" in
            let base_port = Cli.int c "base-port" ~default:7650 in
            let log =
              if Cli.given c "verbose" then fun s ->
                Printf.eprintf "[chaos] %s\n%!" s
              else fun _ -> ()
            in
            let abort = Atomic.make false in
            Sys.set_signal Sys.sigint
              (Sys.Signal_handle (fun _ -> Atomic.set abort true));
            let durable_dir =
              match Cli.str_opt c "durable" with
              | Some dir -> Some dir
              | None ->
                  if recovery then
                    Some
                      (Filename.concat
                         (Filename.get_temp_dir_name ())
                         (Printf.sprintf "timebounds-durable-%d"
                            (Unix.getpid ())))
                  else None
            in
            let fsync = Cli.str c "fsync" ~default:"interval" in
            (match Durable.Wal.fsync_of_string fsync with
            | Ok _ -> ()
            | Error e -> Cli.fail c ("bad --fsync: " ^ e));
            let snapshot_every = Cli.int c "snapshot-every" ~default:1024 in
            let module Cl = Net.Cluster.Make (W) in
            let report =
              Cl.run ~n ~d ~u ?eps ~x ~slack ?workers ~round ~mix ~host
                ~base_port ~log ~abort ~plan ?durable_dir ~fsync
                ~snapshot_every ?fallback ?sync ~ops ~seed ()
            in
            Format.printf "%a@." Net.Cluster.pp_report report;
            let violations =
              Fault.Assumption_monitor.violations
                ~recovery:(durable_dir <> None) ~plan
                ~params:report.Net.Cluster.params ~net_d:d
                ~offsets:report.Net.Cluster.offsets ()
            in
            let assessment =
              Fault.Assumption_monitor.assess ~violations
                ~cuts:report.Net.Cluster.cuts
                ~verdict:report.Net.Cluster.verdict
            in
            Format.printf "chaos verdict: %a@."
              Fault.Assumption_monitor.pp_assessment assessment;
            match assessment with
            | Fault.Assumption_monitor.Genuine _ -> exit 1
            | _ -> ()
          end
          else begin
            let report =
              Fault.Chaos_run.run
                ~workload:(module W.L)
                ~n ~d ~u ?eps ~x ~slack ?workers ~round ~mix ~plan ~recovery
                ?fallback ?sync ~ops ~seed ()
            in
            Format.printf "%a@." Fault.Chaos_run.pp_report report;
            if Cli.given c "show-log" then
              List.iter print_endline report.Fault.Chaos_run.canonical;
            if Cli.given c "verbose" then
              List.iter
                (fun ev ->
                  Format.eprintf "[chaos] %a@." Fault.Chaos_transport.pp_event
                    ev)
                report.Fault.Chaos_run.events;
            if not (Fault.Chaos_run.ok report) then exit 1
          end)

(* ---- recover ---- *)

(* Offline inspection of a replica's durable directory: what a restart
   would reconstruct, without touching the files. *)
let recover_cmd () =
  let prog, argv = args "recover <dir>" in
  let specs =
    [
      Cli.value "object"
        (Printf.sprintf
           "wire object the directory belongs to (%s; default register)"
           (String.concat "|" Net.Wire.names));
    ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let dir =
    match Cli.positionals c with
    | [ d ] -> d
    | [] -> Cli.fail c "missing DIR argument"
    | _ -> Cli.fail c "expected exactly one DIR argument"
  in
  let obj = Cli.str c "object" ~default:"register" in
  match Net.Wire.find obj with
  | None ->
      Format.eprintf "unknown wire object %s (have: %s)@." obj
        (String.concat ", " Net.Wire.names);
      exit 1
  | Some (module W : Net.Wire.WIRED) -> (
      match Durable.Store.inspect ~dir with
      | Error e ->
          Format.eprintf "%s@." e;
          exit 1
      | Ok (meta, view) ->
          let module P = Net.Persist.Make (W.C) in
          let snap = P.recovered_of view in
          let decoded =
            List.length
              (List.filter_map P.decode_record view.Durable.Store.r_records)
          in
          Format.printf "%s@." dir;
          Format.printf "  META:        %s@." meta;
          Format.printf "  generation:  %d@." view.Durable.Store.r_generation;
          Format.printf "  snapshot:    %s@."
            (match view.Durable.Store.r_snapshot with
            | None -> "none"
            | Some p -> Printf.sprintf "%d bytes" (String.length p));
          Format.printf "  wal records: %d (%d decodable)@."
            (List.length view.Durable.Store.r_records)
            decoded;
          Format.printf "  recovers:    %d mutations, high-water mark \
                         (time=%d, pid=%d)@."
            (List.length snap.P.s_applied)
            snap.P.s_hwm_time snap.P.s_hwm_pid)

(* ---- trace ---- *)

let trace_cmd () =
  let prog, argv = args "trace" in
  let specs =
    [
      Cli.value "object"
        (Printf.sprintf "workload (%s; default register)"
           (String.concat "|" Net.Wire.names));
      Cli.value "n" "number of replicas (default 3)";
    ]
    @ timing_specs
    @ [
        Cli.value "ops" "total operations (default 300)";
        Cli.value "mix" "mutator:accessor:other weights (default 50:40:10)";
        Cli.value "workers" "closed-loop client domains; default n";
        Cli.value "round" "operations per quiescent round (default 24)";
        Cli.value "seed" "RNG seed (default 1)";
        Cli.value "grace"
          "scheduling allowance over each bound, µs (default: slack)";
        Cli.value "plan"
          "fault plan to run under (requires --processes; see `timebounds \
           chaos --help`)";
        Cli.value "chaos-seed" "seed for the plan's coin flips (default: seed)";
        Cli.flag "processes"
          "trace a real multi-process TCP cluster (per-replica trace files, \
           merged afterwards) instead of in-process domains";
        Cli.value "host" "bind/connect host (default 127.0.0.1)";
        Cli.value "base-port" "first replica port (default 7700)";
        Cli.value "trace-dir"
          "directory for --processes trace files (default: fresh dir under \
           the system temp dir; kept after the run)";
        Cli.value "chrome" "export Chrome trace-event JSON to FILE";
        Cli.value "prom" "export Prometheus text metrics to FILE";
        Cli.flag "show-spans" "print every checked span";
        Cli.flag "verbose" "log child lifecycle to stderr";
      ]
    @ sync_specs
  in
  let c = Cli.parse ~prog ~specs argv in
  let obj = Cli.str c "object" ~default:"register" in
  match Net.Wire.find obj with
  | None ->
      Format.eprintf "unknown workload %s (have: %s)@." obj
        (String.concat ", " Net.Wire.names);
      exit 1
  | Some (module W : Net.Wire.WIRED) ->
      let n = Cli.int c "n" ~default:3 in
      let d, u, eps, x, slack = timing_args c in
      let sync = sync_args c ~d:(d + slack) ~u:(u + slack) in
      let ops = Cli.int c "ops" ~default:300 in
      let mix = Cli.mix c "mix" ~default:(50, 40, 10) in
      let workers = Cli.int_opt c "workers" in
      let round = Cli.int c "round" ~default:24 in
      let seed = Cli.int c "seed" ~default:1 in
      let grace = Cli.int c "grace" ~default:slack in
      let plan =
        match Cli.str_opt c "plan" with
        | None -> None
        | Some spec -> (
            if not (Cli.given c "processes") then
              Cli.fail c
                "--plan requires --processes (chaos tracing runs the real \
                 cluster)";
            let cseed = Cli.int c "chaos-seed" ~default:seed in
            match Fault.Fault_plan.compile ~seed:cseed ~spec with
            | Error e -> Cli.fail c ("bad --plan: " ^ e)
            | Ok p -> Some p)
      in
      (* Analyse + export; shared by both run shapes.  Exit 1 on an
         unexcused bound violation or an export that fails validation. *)
      let finish ?recorder ~params ~windows events =
        let events =
          List.stable_sort
            (fun (a : Obs.Event.t) (b : Obs.Event.t) ->
              compare a.Obs.Event.t_us b.Obs.Event.t_us)
            events
        in
        let report = Obs.Analyze.check ~params ~grace_us:grace ~windows events in
        Format.printf "%a@." Obs.Analyze.pp_report report;
        if Cli.given c "show-spans" then
          List.iter
            (fun ck -> Format.printf "  %a@." Obs.Analyze.pp_checked ck)
            report.Obs.Analyze.spans;
        let export_ok = ref true in
        (match Cli.str_opt c "chrome" with
        | None -> ()
        | Some path -> (
            let json = Obs.Export.chrome ~report ~events in
            match Obs.Json.validate json with
            | Ok () ->
                Out_channel.with_open_bin path (fun oc ->
                    output_string oc json);
                Format.printf "chrome trace: %s (%d bytes)@." path
                  (String.length json)
            | Error e ->
                Format.eprintf
                  "internal error: chrome export is not valid JSON: %s@." e;
                export_ok := false));
        (match Cli.str_opt c "prom" with
        | None -> ()
        | Some path ->
            let text = Obs.Export.prometheus ~report ?recorder () in
            Out_channel.with_open_bin path (fun oc -> output_string oc text);
            Format.printf "metrics: %s@." path);
        if report.Obs.Analyze.violations > 0 || not !export_ok then exit 1
      in
      if Cli.given c "processes" then begin
        let host = Cli.str c "host" ~default:"127.0.0.1" in
        let base_port = Cli.int c "base-port" ~default:7700 in
        let trace_dir =
          match Cli.str_opt c "trace-dir" with
          | Some dir -> dir
          | None ->
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "timebounds-trace-%d" (Unix.getpid ()))
        in
        let log =
          if Cli.given c "verbose" then fun s ->
            Printf.eprintf "[trace] %s\n%!" s
          else fun _ -> ()
        in
        let abort = Atomic.make false in
        Sys.set_signal Sys.sigint
          (Sys.Signal_handle (fun _ -> Atomic.set abort true));
        let module Cl = Net.Cluster.Make (W) in
        let report =
          Cl.run ~n ~d ~u ?eps ~x ~slack ?workers ~round ~mix ~host ~base_port
            ~log ~abort ?plan ?sync ~trace_dir ~ops ~seed ()
        in
        Format.printf "%a@.@." Net.Cluster.pp_report report;
        let events =
          List.concat_map
            (fun i ->
              let path =
                Filename.concat trace_dir (Printf.sprintf "replica-%d.trace" i)
              in
              if Sys.file_exists path then Obs.Recorder.read_file path else [])
            (List.init n Fun.id)
        in
        Format.printf "merged %d events from %s@." (List.length events)
          trace_dir;
        let windows =
          match plan with
          | None -> []
          | Some p ->
              Fault.Assumption_monitor.violations ~plan:p
                ~params:report.Net.Cluster.params ~net_d:d
                ~offsets:report.Net.Cluster.offsets ()
              |> List.map (fun (v : Fault.Assumption_monitor.violation) ->
                     ( v.Fault.Assumption_monitor.label,
                       v.Fault.Assumption_monitor.v_from_us,
                       v.Fault.Assumption_monitor.v_until_us ))
        in
        if plan = None && not (Net.Cluster.ok report) then exit 1;
        finish ~params:report.Net.Cluster.params ~windows events
      end
      else begin
        (* In-process: one recorder in this process sees every replica
           domain; the memory sink keeps the events for analysis. *)
        let module Gen = Runtime.Loadgen.Make (W.L) in
        let sink, contents = Obs.Recorder.memory_sink () in
        let r =
          Obs.Recorder.start ~epoch_us:(Prelude.Mclock.now_us ()) ~sink ()
        in
        Obs.Recorder.install r;
        let run =
          Gen.run ~n ~d ~u ?eps ~x ~slack ?workers ~round ~mix ?sync ~ops
            ~seed ()
        in
        Obs.Recorder.uninstall ();
        Obs.Recorder.stop r;
        Format.printf "%a@.@." Runtime.Loadgen.pp_report run;
        if not (Runtime.Loadgen.is_linearizable run) then exit 1;
        finish
          ~recorder:(Obs.Recorder.stats r)
          ~params:run.Runtime.Loadgen.params ~windows:[] (contents ())
      end

(* ---- shards ---- *)

(* [timebounds shards serve]: one replica process hosting [--shards]
   independent Algorithm-1 instances multiplexed over the shared per-peer
   TCP links (normally forked by [shards cluster]). *)
let shards_serve argv =
  let prog = "timebounds shards serve" in
  let specs =
    [
      Cli.value "pid" "this replica's id, 0-based (required)";
      Cli.value "peers"
        "every replica's address as host:port,host:port,... (required; \
         index = pid)";
      Cli.value "shards" "number of shard instances to host (required)";
      Cli.value "object"
        (Printf.sprintf "wire object (%s; default kv)"
           (String.concat "|" Net.Wire.names));
    ]
    @ timing_specs
    @ [
        Cli.value "offset" "this replica's clock offset, µs (default 0)";
        Cli.value "epoch"
          "shared clock epoch, µs on the wall clock (default: now)";
        Cli.value "watch-parent" "exit when this OS pid disappears";
        Cli.value "chaos"
          "fault plan spec; scope a rule to one shard with %K, e.g. \
           'drop(20)%3@0.2s-0.6s' (see `timebounds chaos --help`)";
        Cli.value "chaos-seed" "seed for the fault plan (default 0)";
        Cli.value "trace"
          "write this replica's observability events to FILE";
        Cli.value "durable"
          "durable root directory; each shard persists under \
           <root>/shard-<k>";
        Cli.value "fsync"
          "WAL fsync policy: always | interval[:N] | never (default \
           interval)";
        Cli.value "snapshot-every"
          "checkpoint after this many WAL records (default 1024; 0 = never)";
      ]
    @ fallback_specs
    @ [ Cli.flag "quiet" "suppress per-replica logging" ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let pid =
    match Cli.int_opt c "pid" with
    | Some p -> p
    | None -> Cli.fail c "--pid is required"
  in
  let addrs =
    match Cli.str_opt c "peers" with
    | Some v -> Cli.peers c "peers" v
    | None -> Cli.fail c "--peers is required"
  in
  let n = Array.length addrs in
  if pid < 0 || pid >= n then
    Cli.fail c (Printf.sprintf "--pid %d out of range for %d peers" pid n);
  let shards =
    match Cli.int_opt c "shards" with
    | Some s when s >= 1 -> s
    | Some _ -> Cli.fail c "--shards must be >= 1"
    | None -> Cli.fail c "--shards is required"
  in
  let obj = Cli.str c "object" ~default:"kv" in
  match Net.Wire.find obj with
  | None ->
      Format.eprintf "unknown wire object %s (have: %s)@." obj
        (String.concat ", " Net.Wire.names);
      exit 1
  | Some (module W : Net.Wire.WIRED) ->
      let d, u, eps, x, slack = timing_args c in
      let eps =
        match eps with Some e -> e | None -> Core.Params.optimal_eps ~n ~u
      in
      let params =
        Core.Params.make ~n ~d:(d + slack) ~u:(u + slack) ~eps ~x ()
      in
      let offset = Cli.int c "offset" ~default:0 in
      let start_us = Cli.int_opt c "epoch" in
      let watch_parent = Cli.int_opt c "watch-parent" in
      let log =
        if Cli.given c "quiet" then fun _ -> ()
        else fun s -> Printf.eprintf "[shards] %s\n%!" s
      in
      let chaos =
        match Cli.str_opt c "chaos" with
        | None -> None
        | Some spec -> (
            let cseed = Cli.int c "chaos-seed" ~default:0 in
            match Fault.Fault_plan.compile ~seed:cseed ~spec with
            | Error e -> Cli.fail c ("bad --chaos plan: " ^ e)
            | Ok plan -> Some plan)
      in
      let trace = Cli.str_opt c "trace" in
      let durable = Cli.str_opt c "durable" in
      let fsync =
        match
          Durable.Wal.fsync_of_string (Cli.str c "fsync" ~default:"interval")
        with
        | Ok f -> f
        | Error e -> Cli.fail c ("bad --fsync: " ^ e)
      in
      let snapshot_every = Cli.int c "snapshot-every" ~default:1024 in
      let fallback = fallback_args c in
      let module H = Shard.Host.Make (W) in
      H.run_until_signalled ?watch_parent
        {
          Shard.Host.pid;
          shards;
          addrs;
          params;
          offset;
          start_us;
          trace;
          durable;
          fsync;
          snapshot_every;
          chaos;
          fallback;
          log;
        }

(* Per-shard bound attribution over a sharded cluster's merged trace: the
   load generator mints each trace id with the target shard in the origin
   bits, so partitioning the event stream by [Trace_id.origin] and running
   the analyzer per group attributes every latency to its shard. *)
let shards_attribute ~params ~grace ~windows events =
  let report = Obs.Analyze.check ~params ~grace_us:grace ~windows events in
  Format.printf "%a@." Obs.Analyze.pp_report report;
  let by_shard : (int, Obs.Event.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Obs.Event.t) ->
      if e.Obs.Event.trace <> 0 then begin
        let k = Obs.Trace_id.origin e.Obs.Event.trace in
        Hashtbl.replace by_shard k
          (e :: Option.value ~default:[] (Hashtbl.find_opt by_shard k))
      end)
    events;
  Hashtbl.fold (fun k evs acc -> (k, List.rev evs) :: acc) by_shard []
  |> List.sort compare
  |> List.iter (fun (k, evs) ->
         let r = Obs.Analyze.check ~params ~grace_us:grace ~windows evs in
         Format.printf
           "  shard %3d: %3d spans  %d within, %d violated, %d excused, %d \
            incomplete@."
           k r.Obs.Analyze.total
           (r.Obs.Analyze.total - r.Obs.Analyze.violations
          - r.Obs.Analyze.excused - r.Obs.Analyze.incomplete)
           r.Obs.Analyze.violations r.Obs.Analyze.excused
           r.Obs.Analyze.incomplete);
  report

let shards_load ~drive_only argv =
  let prog =
    if drive_only then "timebounds shards loadgen"
    else "timebounds shards cluster"
  in
  let specs =
    [
      Cli.value "n" "number of replica processes (default 3)";
      Cli.value "shards" "independent object instances (default 8)";
      Cli.value "keys" "key-space size for the zipfian draw (default 100000)";
      Cli.value "theta"
        "zipfian skew in [0,1); 0 = uniform (default 0.99, YCSB-style)";
      Cli.value "vnodes" "virtual nodes per ring member (default 64)";
      Cli.value "ring-seed" "consistent-hash ring seed (default 42)";
    ]
    @ timing_specs
    @ [
        Cli.value "ops" "total operations (default 2000)";
        Cli.value "mix" "mutator:accessor:other weights (default 50:40:10)";
        Cli.value "workers" "closed-loop client domains; default n";
        Cli.value "round" "operations per quiescent round (default 24)";
        Cli.value "seed" "RNG seed (default 1)";
        Cli.value "host" "bind/connect host (default 127.0.0.1)";
        Cli.value "base-port" "first replica port (default 7800)";
      ]
    @ (if drive_only then []
       else
         [
           Cli.value "chaos"
             "fault plan forwarded to every host; scope rules to one shard \
              with %K (see `timebounds chaos --help`)";
           Cli.value "chaos-seed" "seed for the plan's coin flips (default: seed)";
           Cli.value "trace-dir"
             "record per-replica traces here; enables per-shard bound \
              attribution";
           Cli.value "grace"
             "scheduling allowance over each bound, µs (default: slack)";
           Cli.value "chrome" "export Chrome trace-event JSON to FILE";
           Cli.value "prom" "export Prometheus text metrics to FILE";
           Cli.value "durable"
             "directory for durable state, per replica and shard; clients \
              switch to idempotent retries";
           Cli.value "fsync"
             "WAL fsync policy: always | interval[:N] | never (default \
              interval)";
           Cli.value "snapshot-every"
             "checkpoint after this many WAL records (default 1024; 0 = \
              never)";
         ])
    @ [ Cli.flag "verbose" "log child lifecycle to stderr" ]
  in
  let c = Cli.parse ~prog ~specs argv in
  let n = Cli.int c "n" ~default:3 in
  let shards = Cli.int c "shards" ~default:8 in
  let keys = Cli.int c "keys" ~default:100_000 in
  let theta =
    match float_of_string_opt (Cli.str c "theta" ~default:"0.99") with
    | Some t when t >= 0. && t < 1. -> t
    | _ -> Cli.fail c "--theta must be a float in [0, 1)"
  in
  let vnodes = Cli.int c "vnodes" ~default:64 in
  let ring_seed = Cli.int c "ring-seed" ~default:42 in
  let d, u, eps, x, slack = timing_args c in
  let ops = Cli.int c "ops" ~default:2000 in
  let mix = Cli.mix c "mix" ~default:(50, 40, 10) in
  let workers = Cli.int_opt c "workers" in
  let round = Cli.int c "round" ~default:24 in
  let seed = Cli.int c "seed" ~default:1 in
  let host = Cli.str c "host" ~default:"127.0.0.1" in
  let base_port = Cli.int c "base-port" ~default:7800 in
  let log =
    if Cli.given c "verbose" then fun s -> Printf.eprintf "[shards] %s\n%!" s
    else fun _ -> ()
  in
  let abort = Atomic.make false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set abort true));
  if drive_only then begin
    let report =
      Shard.Shard_cluster.drive ~n ~shards ~keys ~theta ~vnodes ~ring_seed ~d
        ~u ?eps ~x ~slack ?workers ~round ~mix ~host ~base_port ~log ~abort
        ~ops ~seed ()
    in
    Format.printf "%a@." Shard.Shard_cluster.pp_report report;
    if not (Shard.Shard_cluster.ok report) then exit 1
  end
  else begin
    let plan =
      match Cli.str_opt c "chaos" with
      | None -> None
      | Some spec -> (
          let cseed = Cli.int c "chaos-seed" ~default:seed in
          match Fault.Fault_plan.compile ~seed:cseed ~spec with
          | Error e -> Cli.fail c ("bad --chaos plan: " ^ e)
          | Ok p -> Some p)
    in
    let trace_dir = Cli.str_opt c "trace-dir" in
    let grace = Cli.int c "grace" ~default:slack in
    let durable_dir = Cli.str_opt c "durable" in
    let fsync = Cli.str c "fsync" ~default:"interval" in
    (match Durable.Wal.fsync_of_string fsync with
    | Ok _ -> ()
    | Error e -> Cli.fail c ("bad --fsync: " ^ e));
    let snapshot_every = Cli.int c "snapshot-every" ~default:1024 in
    let report =
      Shard.Shard_cluster.run ~n ~shards ~keys ~theta ~vnodes ~ring_seed ~d ~u
        ?eps ~x ~slack ?workers ~round ~mix ~host ~base_port ~log ~abort ?plan
        ?trace_dir ?durable_dir ~fsync ~snapshot_every ~ops ~seed ()
    in
    Format.printf "%a@." Shard.Shard_cluster.pp_report report;
    let analysis_ok =
      match trace_dir with
      | None -> true
      | Some tdir ->
          let events =
            List.concat_map
              (fun i ->
                let path =
                  Filename.concat tdir (Printf.sprintf "replica-%d.trace" i)
                in
                if Sys.file_exists path then Obs.Recorder.read_file path
                else [])
              (List.init n Fun.id)
            |> List.stable_sort (fun (a : Obs.Event.t) (b : Obs.Event.t) ->
                   compare a.Obs.Event.t_us b.Obs.Event.t_us)
          in
          Format.printf "@.merged %d events from %s@." (List.length events)
            tdir;
          let windows =
            match plan with
            | None -> []
            | Some p ->
                Fault.Assumption_monitor.violations ~plan:p
                  ~params:report.Shard.Shard_cluster.params ~net_d:d
                  ~offsets:report.Shard.Shard_cluster.offsets ()
                |> List.map (fun (v : Fault.Assumption_monitor.violation) ->
                       ( v.Fault.Assumption_monitor.label,
                         v.Fault.Assumption_monitor.v_from_us,
                         v.Fault.Assumption_monitor.v_until_us ))
          in
          let analysis =
            shards_attribute
              ~params:report.Shard.Shard_cluster.params ~grace ~windows
              events
          in
          let export_ok = ref true in
          (match Cli.str_opt c "chrome" with
          | None -> ()
          | Some path -> (
              let json = Obs.Export.chrome ~report:analysis ~events in
              match Obs.Json.validate json with
              | Ok () ->
                  Out_channel.with_open_bin path (fun oc ->
                      output_string oc json);
                  Format.printf "chrome trace: %s (%d bytes)@." path
                    (String.length json)
              | Error e ->
                  Format.eprintf
                    "internal error: chrome export is not valid JSON: %s@." e;
                  export_ok := false));
          (match Cli.str_opt c "prom" with
          | None -> ()
          | Some path ->
              let text = Obs.Export.prometheus ~report:analysis () in
              Out_channel.with_open_bin path (fun oc -> output_string oc text);
              Format.printf "metrics: %s@." path);
          analysis.Obs.Analyze.violations = 0 && !export_ok
    in
    if not (Shard.Shard_cluster.ok report && analysis_ok) then exit 1
  end

let shards_cmd () =
  match Array.to_list Sys.argv with
  | _ :: _ :: "serve" :: rest -> shards_serve rest
  | _ :: _ :: "cluster" :: rest -> shards_load ~drive_only:false rest
  | _ :: _ :: "loadgen" :: rest -> shards_load ~drive_only:true rest
  | _ :: _ :: mode :: _ when String.length mode > 0 && mode.[0] <> '-' ->
      Format.eprintf
        "unknown shards mode %s (expected serve, cluster or loadgen)@." mode;
      exit 2
  | _ :: _ :: rest ->
      (* bare `timebounds shards [flags]` defaults to cluster mode *)
      shards_load ~drive_only:false rest
  | _ -> shards_load ~drive_only:false []

(* ---- dispatch ---- *)

let usage ?(status = 2) () =
  prerr_string
    "usage: timebounds <command> [options]\n\
     commands:\n\
    \  list        list every reproducible table and figure\n\
    \  experiment  run experiments by id (all when no id given)\n\
    \  tables      print Tables I-IV with bound formulas evaluated\n\
    \  classify    classify an object's operations (Chapter II)\n\
    \  derive      derive an object's bound table from its op algebra\n\
    \  graph       print an object's commutativity graph\n\
    \  live        Algorithm 1 on real domains (one process)\n\
    \  sync        clock-sync convergence demo: skewed replicas earn their\n\
    \              achieved ε over the wire (DESIGN.md par.14)\n\
    \  serve       one replica as an OS process over TCP\n\
    \  cluster     fork n local serve processes and drive them over TCP\n\
    \  chaos       run live/cluster under a seeded fault-injection plan\n\
    \  recover     inspect a replica's durable directory (WAL + snapshots)\n\
    \  trace       record a traced run, decompose latency, attribute bounds\n\
    \  shards      sharded namespace: many instances behind a consistent-hash\n\
    \              ring (modes: serve | cluster | loadgen; zipfian load,\n\
    \              per-shard latency, verdicts and bound attribution)\n\
     run `timebounds <command> --help` for the command's options\n";
  exit status

let () =
  if Array.length Sys.argv < 2 then usage ();
  match Sys.argv.(1) with
  | "list" -> list_cmd ()
  | "experiment" -> experiment_cmd ()
  | "tables" -> tables_cmd ()
  | "classify" -> classify_cmd ()
  | "derive" -> derive_cmd ()
  | "graph" -> graph_cmd ()
  | "live" -> live_cmd ()
  | "sync" -> sync_cmd ()
  | "serve" -> serve_cmd ()
  | "cluster" -> cluster_cmd ()
  | "chaos" -> chaos_cmd ()
  | "recover" -> recover_cmd ()
  | "trace" -> trace_cmd ()
  | "shards" -> shards_cmd ()
  | "--help" | "-h" | "help" -> usage ~status:0 ()
  | other ->
      Format.eprintf "unknown command %s@." other;
      usage ()
