(** Small flag parser shared by every [timebounds] subcommand.

    Accepts [--name v], [--name=v], [-name v] and [-name=v] uniformly —
    notably [--n 3] and [-n 3] both work, which cmdliner-style parsers
    cannot express for one-letter names (they render them short-only).
    Unknown flags, missing values and malformed ints are reported against
    the subcommand's usage string and exit with code 2. *)

type kind = Flag  (** bare switch *) | Value  (** takes one value *)

type spec = { name : string; kind : kind; doc : string }

let flag name doc = { name; kind = Flag; doc }
let value name doc = { name; kind = Value; doc }

type t = {
  prog : string;  (** e.g. ["timebounds cluster"] *)
  specs : spec list;
  seen : (string * string option) list;  (** flag name -> value *)
  positionals : string list;
}

let usage t =
  let b = Buffer.create 256 in
  Buffer.add_string b ("usage: " ^ t.prog);
  if t.specs <> [] then Buffer.add_string b " [options]";
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  --%-14s %s\n" s.name s.doc))
    t.specs;
  Buffer.contents b

let fail t msg =
  prerr_string (Printf.sprintf "%s: %s\n%s" t.prog msg (usage t));
  exit 2

(* Strip leading dashes and split a glued [=value]. *)
let split_arg a =
  let body =
    if String.length a >= 2 && String.sub a 0 2 = "--" then
      Some (String.sub a 2 (String.length a - 2))
    else if String.length a >= 1 && a.[0] = '-' && a <> "-" then
      Some (String.sub a 1 (String.length a - 1))
    else None
  in
  match body with
  | None -> `Positional a
  | Some body -> (
      match String.index_opt body '=' with
      | Some i ->
          `Flag
            ( String.sub body 0 i,
              Some (String.sub body (i + 1) (String.length body - i - 1)) )
      | None -> `Flag (body, None))

let parse ~prog ~specs args =
  let t = { prog; specs; seen = []; positionals = [] } in
  let find name = List.find_opt (fun s -> s.name = name) specs in
  let rec go t = function
    | [] -> { t with positionals = List.rev t.positionals }
    | "--" :: rest ->
        { t with positionals = List.rev_append t.positionals rest }
    | a :: rest -> (
        match split_arg a with
        | `Positional p -> go { t with positionals = p :: t.positionals } rest
        | `Flag (("help" | "h"), _) ->
            print_string (usage t);
            exit 0
        | `Flag (name, glued) -> (
            match find name with
            | None -> fail t (Printf.sprintf "unknown option --%s" name)
            | Some { kind = Flag; _ } -> (
                match glued with
                | Some _ ->
                    fail t (Printf.sprintf "--%s takes no value" name)
                | None -> go { t with seen = (name, None) :: t.seen } rest)
            | Some { kind = Value; _ } -> (
                match glued with
                | Some v -> go { t with seen = (name, Some v) :: t.seen } rest
                | None -> (
                    match rest with
                    | v :: rest' ->
                        go { t with seen = (name, Some v) :: t.seen } rest'
                    | [] ->
                        fail t
                          (Printf.sprintf "--%s requires a value" name)))))
  in
  go t args

let given t name = List.mem_assoc name t.seen

let str_opt t name =
  match List.assoc_opt name t.seen with Some v -> v | None -> None

let str t name ~default = Option.value (str_opt t name) ~default

let int_of t name v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> fail t (Printf.sprintf "--%s: not an integer: %s" name v)

let int_opt t name = Option.map (int_of t name) (str_opt t name)
let int t name ~default = Option.value (int_opt t name) ~default

(** ["50:40:10"] → [(50, 40, 10)]. *)
let mix t name ~default =
  match str_opt t name with
  | None -> default
  | Some v -> (
      match String.split_on_char ':' v |> List.map int_of_string_opt with
      | [ Some m; Some a; Some o ] -> (m, a, o)
      | _ -> fail t (Printf.sprintf "--%s: expected M:A:O, got %s" name v))

(** ["host:port,host:port,..."] → [[| (host, port); ... |]]. *)
let peers t name v =
  let parse_one s =
    match String.rindex_opt s ':' with
    | None -> fail t (Printf.sprintf "--%s: missing port in %s" name s)
    | Some i ->
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        (host, int_of t name port)
  in
  match String.split_on_char ',' v with
  | [] | [ "" ] -> fail t (Printf.sprintf "--%s: empty peer list" name)
  | parts -> Array.of_list (List.map parse_one parts)

let positionals t = t.positionals
